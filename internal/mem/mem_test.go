package mem

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func mustArena(t *testing.T, cfg Config) *Arena {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewDefaults(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 64, PayloadBytes: 128})
	if a.LineWords() != DefaultLineWords {
		t.Fatalf("LineWords = %d, want %d", a.LineWords(), DefaultLineWords)
	}
	if a.Words() != 64 || a.PayloadBytes() != 128 {
		t.Fatalf("sizes = %d words, %d bytes", a.Words(), a.PayloadBytes())
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{ControlWords: 0, PayloadBytes: 1},
		{ControlWords: -4, PayloadBytes: 1},
		{ControlWords: 4, PayloadBytes: -1},
		{ControlWords: 4, PayloadBytes: 0, LineWords: 3},
		{ControlWords: 4, PayloadBytes: 0, LineWords: -2},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 8, PayloadBytes: 0})
	a.Store(ActorApp, 3, 0xdeadbeef)
	if got := a.Load(ActorEngine, 3); got != 0xdeadbeef {
		t.Fatalf("Load = %#x", got)
	}
	if got := a.Load(ActorEngine, 4); got != 0 {
		t.Fatalf("untouched word = %#x, want 0", got)
	}
}

func TestLineOf(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 16, PayloadBytes: 0, LineWords: 4})
	for w, want := range map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 15: 3} {
		if got := a.LineOf(w); got != want {
			t.Errorf("LineOf(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestValidWord(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 8, PayloadBytes: 0})
	if !a.ValidWord(0) || !a.ValidWord(7) {
		t.Fatal("valid words rejected")
	}
	if a.ValidWord(-1) || a.ValidWord(8) {
		t.Fatal("invalid words accepted")
	}
}

func TestValidPayload(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 4, PayloadBytes: 100})
	if !a.ValidPayload(0, 100) || !a.ValidPayload(50, 50) || !a.ValidPayload(99, 0) {
		t.Fatal("valid ranges rejected")
	}
	if a.ValidPayload(-1, 10) || a.ValidPayload(0, 101) || a.ValidPayload(90, 11) {
		t.Fatal("invalid ranges accepted")
	}
	// Overflow guard.
	if a.ValidPayload(1<<62, 1<<62) {
		t.Fatal("overflowing range accepted")
	}
}

func TestTestAndSet(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 4, PayloadBytes: 0})
	if !a.TestAndSet(ActorApp, 0) {
		t.Fatal("first acquire failed")
	}
	if a.TestAndSet(ActorApp, 0) {
		t.Fatal("second acquire on held lock succeeded")
	}
	a.Unset(ActorApp, 0)
	if !a.TestAndSet(ActorApp, 0) {
		t.Fatal("acquire after release failed")
	}
}

func TestEngineTestAndSetPanics(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 4, PayloadBytes: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("engine test-and-set did not panic")
		}
	}()
	a.TestAndSet(ActorEngine, 0)
}

func TestPayloadSliceBounds(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 4, PayloadBytes: 64})
	p := a.Payload(16, 8)
	if len(p) != 8 || cap(p) != 8 {
		t.Fatalf("len=%d cap=%d, want 8/8 (full-slice expression)", len(p), cap(p))
	}
	p[0] = 0xAA
	if a.Payload(16, 1)[0] != 0xAA {
		t.Fatal("payload write not visible through second slice")
	}
}

func TestAllocWords(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 10, PayloadBytes: 0})
	off1, err := a.AllocWords(4)
	if err != nil || off1 != 0 {
		t.Fatalf("first alloc: %d, %v", off1, err)
	}
	off2, err := a.AllocWords(4)
	if err != nil || off2 != 4 {
		t.Fatalf("second alloc: %d, %v", off2, err)
	}
	if a.FreeWords() != 2 {
		t.Fatalf("FreeWords = %d", a.FreeWords())
	}
	if _, err := a.AllocWords(3); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if _, err := a.AllocWords(0); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
}

func TestAllocLinesAligned(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 32, PayloadBytes: 0, LineWords: 4})
	if _, err := a.AllocWords(3); err != nil { // misalign the cursor
		t.Fatal(err)
	}
	off, err := a.AllocLines(2)
	if err != nil {
		t.Fatal(err)
	}
	if off%4 != 0 {
		t.Fatalf("line alloc not aligned: %d", off)
	}
	if off != 4 {
		t.Fatalf("off = %d, want 4", off)
	}
	off2, err := a.AllocLines(1)
	if err != nil || off2 != 12 {
		t.Fatalf("second line alloc = %d, %v", off2, err)
	}
	if _, err := a.AllocLines(10); err == nil {
		t.Fatal("over-allocation succeeded")
	}
}

func TestAllocPayloadAlignment(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 4, PayloadBytes: 256})
	if _, err := a.AllocPayload(5, 0); err != nil {
		t.Fatal(err)
	}
	off, err := a.AllocPayload(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if off%32 != 0 {
		t.Fatalf("payload not 32-byte aligned: %d", off)
	}
	if _, err := a.AllocPayload(1000, 1); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if _, err := a.AllocPayload(8, 3); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
	if _, err := a.AllocPayload(0, 1); err == nil {
		t.Fatal("zero-size payload alloc accepted")
	}
}

func TestFreePayload(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 4, PayloadBytes: 100})
	if a.FreePayload() != 100 {
		t.Fatalf("FreePayload = %d", a.FreePayload())
	}
	if _, err := a.AllocPayload(60, 1); err != nil {
		t.Fatal(err)
	}
	if a.FreePayload() != 40 {
		t.Fatalf("FreePayload = %d after alloc", a.FreePayload())
	}
}

type countTracer struct {
	loads, stores, locks int
	lastActor            Actor
	lastWord             int
}

func (c *countTracer) OnLoad(a Actor, w int)    { c.loads++; c.lastActor = a; c.lastWord = w }
func (c *countTracer) OnStore(a Actor, w int)   { c.stores++; c.lastActor = a; c.lastWord = w }
func (c *countTracer) OnBusLock(a Actor, w int) { c.locks++; c.lastActor = a; c.lastWord = w }

func TestTracerSeesAccesses(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 8, PayloadBytes: 0})
	tr := &countTracer{}
	a.SetTracer(tr)
	a.Store(ActorEngine, 5, 1)
	if tr.stores != 1 || tr.lastActor != ActorEngine || tr.lastWord != 5 {
		t.Fatalf("tracer after store: %+v", tr)
	}
	a.Load(ActorApp, 5)
	if tr.loads != 1 || tr.lastActor != ActorApp {
		t.Fatalf("tracer after load: %+v", tr)
	}
	a.TestAndSet(ActorApp, 2)
	if tr.locks != 1 {
		t.Fatalf("tracer after TAS: %+v", tr)
	}
	a.SetTracer(nil)
	a.Load(ActorApp, 5)
	if tr.loads != 1 {
		t.Fatal("cleared tracer still invoked")
	}
}

func TestViewBindsActor(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 8, PayloadBytes: 16})
	tr := &countTracer{}
	a.SetTracer(tr)
	v := NewView(a, ActorEngine)
	if v.Actor() != ActorEngine || v.Arena() != a {
		t.Fatal("view accessors wrong")
	}
	v.Store(1, 7)
	if tr.lastActor != ActorEngine {
		t.Fatalf("view store attributed to %v", tr.lastActor)
	}
	if v.Load(1) != 7 {
		t.Fatal("view load wrong value")
	}
	av := NewView(a, ActorApp)
	if !av.TestAndSet(3) {
		t.Fatal("view TAS failed")
	}
	av.Unset(3)
	if p := av.Payload(0, 16); len(p) != 16 {
		t.Fatal("view payload wrong length")
	}
}

func TestActorString(t *testing.T) {
	for a, want := range map[Actor]string{
		ActorNone: "none", ActorApp: "app", ActorEngine: "engine",
		ActorKernel: "kernel", Actor(9): "actor(9)",
	} {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", a, got, want)
		}
	}
}

// Concurrent single-writer usage must be race-detector clean: one
// goroutine (engine) writes word E, another (app) writes word A, both
// read each other's word, payload handoff ordered by the control word.
func TestConcurrentSingleWriterClean(t *testing.T) {
	a := mustArena(t, Config{ControlWords: 8, PayloadBytes: 64})
	const wordApp, wordEng = 0, 4 // separate lines
	const rounds = 10000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // engine: waits for app word to advance, then echoes
		defer wg.Done()
		for i := uint64(1); i <= rounds; i++ {
			for a.Load(ActorEngine, wordApp) < i {
				runtime.Gosched()
			}
			// App published payload before storing wordApp; read it.
			b := a.Payload(0, 8)
			_ = b[0]
			a.Store(ActorEngine, wordEng, i)
		}
	}()
	go func() { // app
		defer wg.Done()
		for i := uint64(1); i <= rounds; i++ {
			a.Payload(0, 8)[0] = byte(i)
			a.Store(ActorApp, wordApp, i)
			for a.Load(ActorApp, wordEng) < i {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if a.Load(ActorNone, wordEng) != rounds {
		t.Fatalf("final engine word = %d", a.Load(ActorNone, wordEng))
	}
}

// Property: AllocLines always returns line-aligned offsets and
// allocations never overlap.
func TestQuickAllocLinesAlignedDisjoint(t *testing.T) {
	prop := func(sizes []uint8) bool {
		a, err := New(Config{ControlWords: 1 << 14, PayloadBytes: 0, LineWords: 4})
		if err != nil {
			return false
		}
		type span struct{ off, n int }
		var spans []span
		for _, s := range sizes {
			n := int(s%8) + 1
			off, err := a.AllocLines(n)
			if err != nil {
				break // exhaustion is fine
			}
			if off%4 != 0 {
				return false
			}
			spans = append(spans, span{off, n * 4})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.off < b.off+b.n && b.off < a.off+a.n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
