// Package mem implements the shared-memory arena that stands in for
// FLIPC's wired, physically shared communication buffer.
//
// The paper's communication buffer is a fixed-size, non-pageable region
// shared between every application using FLIPC and the messaging engine
// running on the node's communication controller. The controller cannot
// perform atomic read-modify-write operations on main memory, so all
// synchronization between the engine and applications must be built
// from plain loads and stores (wait-free, single-writer-per-word).
//
// This package models that region as two areas:
//
//   - a control area of 64-bit words holding endpoint descriptors,
//     queue slots, and counters, accessed only through atomic loads and
//     stores attributed to an Actor (application, engine, or kernel);
//   - a payload area of raw bytes holding message buffer contents,
//     whose cross-actor visibility is ordered by atomic stores to
//     control words (valid under the Go memory model).
//
// Read-modify-write (TestAndSet) is provided but is reserved for
// application-to-application locking, mirroring the paper: application
// threads run on the main processors, which do have test-and-set, while
// engine/application synchronization never uses it. The arena records
// every access through an optional Tracer so the cache cost model
// (internal/cachesim) can reproduce the paper's coherency findings.
package mem

import (
	"fmt"
	"sync/atomic"
)

// Actor identifies which protection domain performs a memory access.
// The distinction matters to the cache model (app and engine run on
// different processors in the paper's MP3 nodes) and to the
// single-writer audits in tests.
type Actor uint8

// Actors. ActorNone marks unattributed setup-time accesses.
const (
	ActorNone Actor = iota
	ActorApp
	ActorEngine
	ActorKernel
)

// String returns the actor name.
func (a Actor) String() string {
	switch a {
	case ActorNone:
		return "none"
	case ActorApp:
		return "app"
	case ActorEngine:
		return "engine"
	case ActorKernel:
		return "kernel"
	default:
		return fmt.Sprintf("actor(%d)", uint8(a))
	}
}

// Tracer observes arena accesses. Implementations must be fast; the
// arena invokes them inline on every traced operation. A nil tracer
// disables tracing.
type Tracer interface {
	OnLoad(a Actor, word int)
	OnStore(a Actor, word int)
	// OnBusLock records a bus-locking read-modify-write (test-and-set),
	// which on the Paragon bypasses the cache and locks the memory bus.
	OnBusLock(a Actor, word int)
}

// Config sizes an arena.
type Config struct {
	// ControlWords is the number of 64-bit words in the control area.
	ControlWords int
	// PayloadBytes is the size of the payload area in bytes.
	PayloadBytes int
	// LineWords is the cache line size in words. The Paragon's i860
	// caches use 32-byte lines, i.e. 4 words. Must be a power of two.
	LineWords int
}

// DefaultLineWords is the Paragon's 32-byte line expressed in words.
const DefaultLineWords = 4

// Arena is the shared region. The allocator methods (AllocWords,
// AllocLines, AllocPayload) are setup-time only and not safe for
// concurrent use; Load/Store/Payload access is safe for concurrent use
// by multiple goroutines.
type Arena struct {
	words     []uint64
	payload   []byte
	lineWords int
	tracer    Tracer

	nextWord    int
	nextPayload int
}

// New creates an arena. LineWords defaults to DefaultLineWords when zero.
func New(cfg Config) (*Arena, error) {
	if cfg.LineWords == 0 {
		cfg.LineWords = DefaultLineWords
	}
	if cfg.LineWords < 1 || cfg.LineWords&(cfg.LineWords-1) != 0 {
		return nil, fmt.Errorf("mem: LineWords %d must be a power of two", cfg.LineWords)
	}
	if cfg.ControlWords <= 0 {
		return nil, fmt.Errorf("mem: ControlWords %d must be positive", cfg.ControlWords)
	}
	if cfg.PayloadBytes < 0 {
		return nil, fmt.Errorf("mem: PayloadBytes %d must be non-negative", cfg.PayloadBytes)
	}
	return &Arena{
		words:     make([]uint64, cfg.ControlWords),
		payload:   make([]byte, cfg.PayloadBytes),
		lineWords: cfg.LineWords,
	}, nil
}

// SetTracer installs (or clears, with nil) the access tracer.
// Install tracers before concurrent access begins.
func (a *Arena) SetTracer(t Tracer) { a.tracer = t }

// LineWords returns the configured cache line size in words.
func (a *Arena) LineWords() int { return a.lineWords }

// Words returns the control area size in words.
func (a *Arena) Words() int { return len(a.words) }

// PayloadBytes returns the payload area size.
func (a *Arena) PayloadBytes() int { return len(a.payload) }

// LineOf returns the cache line index containing control word w.
func (a *Arena) LineOf(w int) int { return w / a.lineWords }

// ValidWord reports whether w is a legal control word index. The
// messaging engine uses this (never panicking access) to validate
// untrusted offsets read from the communication buffer.
func (a *Arena) ValidWord(w int) bool { return w >= 0 && w < len(a.words) }

// ValidPayload reports whether [off, off+n) lies within the payload area.
func (a *Arena) ValidPayload(off, n int) bool {
	return off >= 0 && n >= 0 && off+n <= len(a.payload) && off+n >= off
}

// Load atomically reads control word w on behalf of actor.
func (a *Arena) Load(actor Actor, w int) uint64 {
	v := atomic.LoadUint64(&a.words[w])
	if a.tracer != nil {
		a.tracer.OnLoad(actor, w)
	}
	return v
}

// Store atomically writes control word w on behalf of actor.
func (a *Arena) Store(actor Actor, w int, v uint64) {
	atomic.StoreUint64(&a.words[w], v)
	if a.tracer != nil {
		a.tracer.OnStore(actor, w)
	}
}

// TestAndSet attempts to set word w from 0 to 1, returning true on
// success. This is the application-side lock primitive; the messaging
// engine must never call it (the paper's controllers cannot perform
// read-modify-write on main memory). On the Paragon the operation
// locks the memory bus, which is why the tuned FLIPC interfaces avoid
// it; the tracer's OnBusLock hook lets the cache model charge for that.
func (a *Arena) TestAndSet(actor Actor, w int) bool {
	if actor == ActorEngine {
		panic("mem: messaging engine attempted test-and-set (no RMW on controller)")
	}
	ok := atomic.CompareAndSwapUint64(&a.words[w], 0, 1)
	if a.tracer != nil {
		a.tracer.OnBusLock(actor, w)
	}
	return ok
}

// Unset releases a lock word previously acquired via TestAndSet.
func (a *Arena) Unset(actor Actor, w int) {
	a.Store(actor, w, 0)
}

// Payload returns the byte slice [off, off+n) of the payload area.
// Callers must ensure cross-actor ordering through control-word
// atomics before touching the returned bytes.
func (a *Arena) Payload(off, n int) []byte {
	return a.payload[off : off+n : off+n]
}

// AllocWords reserves n control words and returns the offset of the
// first. Setup-time only.
func (a *Arena) AllocWords(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: AllocWords(%d): size must be positive", n)
	}
	if a.nextWord+n > len(a.words) {
		return 0, fmt.Errorf("mem: control area exhausted: need %d words, %d free", n, len(a.words)-a.nextWord)
	}
	off := a.nextWord
	a.nextWord += n
	return off, nil
}

// AllocLines reserves n whole cache lines, aligned to a line boundary,
// and returns the word offset of the first line. Line-aligned
// allocation is how the tuned FLIPC layout guarantees that words
// written by the application and words written by the engine never
// share a cache line. Setup-time only.
func (a *Arena) AllocLines(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: AllocLines(%d): size must be positive", n)
	}
	aligned := (a.nextWord + a.lineWords - 1) &^ (a.lineWords - 1)
	need := n * a.lineWords
	if aligned+need > len(a.words) {
		return 0, fmt.Errorf("mem: control area exhausted: need %d words at %d, have %d", need, aligned, len(a.words))
	}
	a.nextWord = aligned + need
	return aligned, nil
}

// AllocPayload reserves n payload bytes aligned to align (a power of
// two; 0 or 1 means unaligned) and returns the byte offset. FLIPC
// internalizes all message buffers precisely so it can enforce the
// platform's DMA alignment here on behalf of applications. Setup-time
// only.
func (a *Arena) AllocPayload(n, align int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: AllocPayload(%d): size must be positive", n)
	}
	if align < 0 || (align > 1 && align&(align-1) != 0) {
		return 0, fmt.Errorf("mem: alignment %d must be a power of two", align)
	}
	off := a.nextPayload
	if align > 1 {
		off = (off + align - 1) &^ (align - 1)
	}
	if off+n > len(a.payload) {
		return 0, fmt.Errorf("mem: payload area exhausted: need %d bytes at %d, have %d", n, off, len(a.payload))
	}
	a.nextPayload = off + n
	return off, nil
}

// FreeWords returns the number of unallocated control words remaining.
func (a *Arena) FreeWords() int { return len(a.words) - a.nextWord }

// FreePayload returns the number of unallocated payload bytes remaining.
func (a *Arena) FreePayload() int { return len(a.payload) - a.nextPayload }

// View binds an arena to a fixed actor so call sites do not repeat the
// actor on every access. The zero View is invalid.
type View struct {
	arena *Arena
	actor Actor
}

// NewView returns a view of arena as actor.
func NewView(arena *Arena, actor Actor) View {
	return View{arena: arena, actor: actor}
}

// Arena returns the underlying arena.
func (v View) Arena() *Arena { return v.arena }

// Actor returns the view's actor.
func (v View) Actor() Actor { return v.actor }

// Load atomically reads control word w.
func (v View) Load(w int) uint64 { return v.arena.Load(v.actor, w) }

// Store atomically writes control word w.
func (v View) Store(w int, val uint64) { v.arena.Store(v.actor, w, val) }

// TestAndSet attempts the application lock primitive on word w.
func (v View) TestAndSet(w int) bool { return v.arena.TestAndSet(v.actor, w) }

// Unset releases lock word w.
func (v View) Unset(w int) { v.arena.Unset(v.actor, w) }

// Payload returns payload bytes [off, off+n).
func (v View) Payload(off, n int) []byte { return v.arena.Payload(off, n) }
