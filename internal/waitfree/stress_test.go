package waitfree

import (
	"runtime"
	"sync"
	"testing"

	"flipc/internal/mem"
)

// Stress: a queue, a counter, and a ring share one arena while an
// "application" goroutine and an "engine" goroutine drive all three
// simultaneously — the actual concurrency shape of a FLIPC endpoint
// under load. FIFO order, counter losslessness, and the queue invariant
// must all hold together, race-detector clean.
func TestCombinedStructuresStress(t *testing.T) {
	a, err := mem.New(mem.Config{ControlWords: 8192, LineWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	qBase, _ := a.AllocLines(QueueWords(8, 4, true) / 4)
	q, err := NewQueue(a, qBase, 8, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	cBase, _ := a.AllocLines(CounterWords(4, true) / 4)
	c, err := NewCounter(a, cBase, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	rBase, _ := a.AllocLines(RingWords(16, 4, true) / 4)
	r, err := NewRing(a, rBase, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}

	app := mem.NewView(a, mem.ActorApp)
	eng := mem.NewView(a, mem.ActorEngine)
	kern := mem.NewView(a, mem.ActorKernel)

	const msgs = 20000
	var wg sync.WaitGroup
	wg.Add(2)

	// Engine: process queue entries; count every 3rd as a "drop";
	// ring the doorbell for every 5th.
	go func() {
		defer wg.Done()
		processed := 0
		for processed < msgs {
			if v, ok := q.ProcessPeek(eng); ok {
				if v%3 == 0 {
					c.Incr(eng)
				}
				if v%5 == 0 {
					r.Push(eng, v) // full ring is fine: best-effort doorbell
				}
				q.AdvanceProcess(eng)
				processed++
			} else {
				runtime.Gosched()
			}
		}
	}()

	// Kernel: drain the doorbell concurrently.
	doorbells := make(chan uint64, msgs)
	stopKern := make(chan struct{})
	var kernWg sync.WaitGroup
	kernWg.Add(1)
	go func() {
		defer kernWg.Done()
		for {
			if v, ok := r.Pop(kern); ok {
				doorbells <- v
				continue
			}
			select {
			case <-stopKern:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	// Application: release and acquire, harvesting the counter as it goes.
	var harvested uint64
	go func() {
		defer wg.Done()
		next, acquired := uint64(0), uint64(0)
		for acquired < msgs {
			progress := false
			if next < msgs && q.Release(app, next) {
				next++
				progress = true
			}
			if v, ok := q.Acquire(app); ok {
				if v != acquired {
					t.Errorf("FIFO broken: %d != %d", v, acquired)
					return
				}
				acquired++
				progress = true
			}
			if acquired%512 == 0 {
				harvested += c.ReadAndReset(app)
			}
			if !progress {
				runtime.Gosched()
			}
		}
	}()

	wg.Wait()
	close(stopKern)
	kernWg.Wait()
	harvested += c.ReadAndReset(app)

	wantDrops := uint64(0)
	for v := uint64(0); v < msgs; v++ {
		if v%3 == 0 {
			wantDrops++
		}
	}
	if harvested != wantDrops {
		t.Fatalf("counter harvested %d, want %d (lost or duplicated under stress)", harvested, wantDrops)
	}
	if err := q.CheckInvariant(app); err != nil {
		t.Fatal(err)
	}
	if !q.Empty(app) {
		t.Fatal("queue not empty after stress")
	}
	// Doorbells are best-effort (wait-free producer), but everything
	// popped must be a multiple of 5 and strictly increasing.
	close(doorbells)
	last := int64(-1)
	for v := range doorbells {
		if v%5 != 0 {
			t.Fatalf("doorbell %d not a multiple of 5", v)
		}
		if int64(v) <= last {
			t.Fatalf("doorbell order broken: %d after %d", v, last)
		}
		last = int64(v)
	}
}
