package waitfree

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"flipc/internal/mem"
)

func newRing(t *testing.T, capacity int, padded bool) (*Ring, mem.View, mem.View) {
	t.Helper()
	a := newArena(t, 4096)
	var base int
	var err error
	if padded {
		base, err = a.AllocLines(RingWords(capacity, a.LineWords(), true) / a.LineWords())
	} else {
		base, err = a.AllocWords(RingWords(capacity, a.LineWords(), false))
	}
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(a, base, capacity, a.LineWords(), padded)
	if err != nil {
		t.Fatal(err)
	}
	// Producer is the engine (doorbell), consumer is the kernel.
	return r, mem.NewView(a, mem.ActorEngine), mem.NewView(a, mem.ActorKernel)
}

func TestRingWords(t *testing.T) {
	if RingWords(8, 4, true) != 16 {
		t.Fatalf("padded = %d, want 16", RingWords(8, 4, true))
	}
	if RingWords(8, 4, false) != 10 {
		t.Fatalf("unpadded = %d, want 10", RingWords(8, 4, false))
	}
}

func TestRingValidation(t *testing.T) {
	a := newArena(t, 16)
	if _, err := NewRing(a, 0, 3, 4, false); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
	if _, err := NewRing(a, 14, 8, 4, false); err == nil {
		t.Fatal("out-of-arena ring accepted")
	}
	if _, err := NewRing(a, 1, 4, 4, true); err == nil {
		t.Fatal("misaligned padded ring accepted")
	}
}

func TestRingFIFO(t *testing.T) {
	for _, padded := range []bool{true, false} {
		r, prod, cons := newRing(t, 4, padded)
		if r.Capacity() != 4 {
			t.Fatalf("capacity = %d", r.Capacity())
		}
		if _, ok := r.Pop(cons); ok {
			t.Fatal("pop on empty succeeded")
		}
		for i := uint64(0); i < 4; i++ {
			if !r.Push(prod, i) {
				t.Fatalf("push %d failed", i)
			}
		}
		if r.Push(prod, 99) {
			t.Fatal("push on full succeeded")
		}
		if r.Len(prod) != 4 {
			t.Fatalf("Len = %d", r.Len(prod))
		}
		for i := uint64(0); i < 4; i++ {
			v, ok := r.Pop(cons)
			if !ok || v != i {
				t.Fatalf("pop = %d,%v want %d", v, ok, i)
			}
		}
		if r.Len(cons) != 0 {
			t.Fatalf("Len after drain = %d", r.Len(cons))
		}
	}
}

func TestRingWrap(t *testing.T) {
	r, prod, cons := newRing(t, 2, true)
	for i := uint64(0); i < 1000; i++ {
		if !r.Push(prod, i) {
			t.Fatalf("push %d failed", i)
		}
		v, ok := r.Pop(cons)
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r, prod, cons := newRing(t, 8, true)
	const n = 100000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if r.Push(prod, i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	expect := uint64(0)
	for expect < n {
		if v, ok := r.Pop(cons); ok {
			if v != expect {
				t.Fatalf("pop = %d, want %d", v, expect)
			}
			expect++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
}

// Property: sequential interleavings preserve FIFO and never exceed capacity.
func TestQuickRingInterleavings(t *testing.T) {
	prop := func(ops []bool) bool {
		a, err := mem.New(mem.Config{ControlWords: 128, LineWords: 4})
		if err != nil {
			return false
		}
		base, _ := a.AllocLines(RingWords(4, 4, true) / 4)
		r, err := NewRing(a, base, 4, 4, true)
		if err != nil {
			return false
		}
		prod := mem.NewView(a, mem.ActorEngine)
		cons := mem.NewView(a, mem.ActorKernel)
		var pushed, popped uint64
		for _, isPush := range ops {
			if isPush {
				if r.Push(prod, pushed) {
					pushed++
				}
			} else if v, ok := r.Pop(cons); ok {
				if v != popped {
					return false
				}
				popped++
			}
			if int(pushed-popped) > 4 || popped > pushed {
				return false
			}
			if r.Len(prod) != int(pushed-popped) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
