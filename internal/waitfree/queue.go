// Package waitfree implements FLIPC's wait-free synchronization
// structures for the load/store-only memory model shared by the
// application and the messaging engine.
//
// The Paragon's communication controllers (and the SCSI and Myrinet
// controllers the paper surveys) cannot perform atomic
// read-modify-write on main memory, so every structure here follows the
// paper's design rule: separate or duplicate data so that the
// application and the messaging engine never attempt to concurrently
// write the same memory location. Concretely, each shared word has
// exactly one writer side, and in the tuned ("padded") layout no cache
// line mixes application-written and engine-written words — that
// line-level separation is what eliminated the false-sharing
// invalidations worth almost a factor of two in latency (§Implementation).
//
// The package provides:
//
//   - Queue: the endpoint buffer queue of Figure 3 — a circular queue
//     of buffer pointers with release (head), process (middle), and
//     acquire (tail) pointers;
//   - Counter: the two-location discarded-message counter whose
//     read-and-reset never loses increments;
//   - Ring: a generic single-producer/single-consumer ring used as the
//     engine→kernel wakeup doorbell.
package waitfree

import (
	"fmt"

	"flipc/internal/mem"
)

// Queue is the endpoint buffer queue (paper Figure 3). The application
// releases buffers into the queue at the head, the messaging engine
// processes buffers in the middle, and the application acquires
// finished buffers back at the tail:
//
//	release (app writes)  -> next slot the application fills
//	process (engine writes) -> next slot the engine will handle
//	acquire (app writes)  -> next slot the application reclaims
//
// All three are free-running 64-bit counters; slot index = counter mod
// capacity. Invariant: acquire <= process <= release <= acquire+capacity.
// Slot words are written only by the application (the engine just reads
// them), so no word has two writers. The queue is empty when all three
// counters are equal; "nothing to process" when process == release;
// "nothing to acquire" when acquire == process.
type Queue struct {
	arena    *mem.Arena
	release  int // word offset, application-written
	process  int // word offset, engine-written
	acquire  int // word offset, application-written
	slotBase int // word offset of slot array, application-written
	capacity uint64
}

// QueueWords returns the number of control words a queue of the given
// capacity occupies, for the padded (tuned) or unpadded (legacy,
// false-sharing) layout. Capacity must be a power of two.
func QueueWords(capacity, lineWords int, padded bool) int {
	if padded {
		// One line per pointer (release/process/acquire) so app- and
		// engine-written words never share a line, plus slots rounded
		// up to whole lines (slots are app-written only, so they may
		// share lines with each other but not with process).
		slotLines := (capacity + lineWords - 1) / lineWords
		return (3 + slotLines) * lineWords
	}
	// Legacy layout: three pointers packed together, slots following.
	return 3 + capacity
}

// NewQueue lays out a queue at base in arena. Capacity must be a power
// of two >= 2. The caller must have reserved QueueWords words at base
// (line-aligned when padded).
func NewQueue(a *mem.Arena, base, capacity, lineWords int, padded bool) (*Queue, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("waitfree: queue capacity %d must be a power of two >= 2", capacity)
	}
	words := QueueWords(capacity, lineWords, padded)
	if base < 0 || !a.ValidWord(base) || !a.ValidWord(base+words-1) {
		return nil, fmt.Errorf("waitfree: queue [%d,%d) outside arena (%d words)", base, base+words, a.Words())
	}
	q := &Queue{arena: a, capacity: uint64(capacity)}
	if padded {
		if base%lineWords != 0 {
			return nil, fmt.Errorf("waitfree: padded queue base %d not line-aligned (line=%d words)", base, lineWords)
		}
		q.release = base
		q.process = base + lineWords
		q.acquire = base + 2*lineWords
		q.slotBase = base + 3*lineWords
	} else {
		q.release = base
		q.process = base + 1
		q.acquire = base + 2
		q.slotBase = base + 3
	}
	return q, nil
}

// Capacity returns the number of slots.
func (q *Queue) Capacity() int { return int(q.capacity) }

func (q *Queue) slot(i uint64) int { return q.slotBase + int(i&(q.capacity-1)) }

// Release inserts v at the head of the queue on behalf of the
// application. It returns false when the queue is full (capacity
// buffers between acquire and release). The slot is written before the
// release pointer is advanced, which is what publishes the slot to the
// engine (atomic store ordering).
func (q *Queue) Release(app mem.View, v uint64) bool {
	rel := app.Load(q.release)
	acq := app.Load(q.acquire)
	if rel-acq >= q.capacity {
		return false
	}
	app.Store(q.slot(rel), v)
	app.Store(q.release, rel+1)
	return true
}

// ProcessPeek returns the slot value at the engine's process position
// without advancing, and reports whether one is available. The engine
// calls this, handles the buffer, then calls AdvanceProcess.
func (q *Queue) ProcessPeek(eng mem.View) (uint64, bool) {
	proc := eng.Load(q.process)
	rel := eng.Load(q.release)
	if proc == rel {
		return 0, false
	}
	return eng.Load(q.slot(proc)), true
}

// ProcessPeekChecked is ProcessPeek with the engine-safety half of the
// queue invariant fused in: the unprocessed backlog release-process
// must lie in (0, capacity], which catches a release pointer scribbled
// backwards (huge unsigned difference) or wildly forwards. A non-nil
// error means the control words are corrupt and nothing read through
// this queue can be trusted.
//
// Deliberately NOT checked here: acquire <= process. The acquire word
// is application-owned and nothing the engine does depends on it, so
// loading it from the engine would re-create exactly the app/engine
// line ping-pong the padded layout exists to eliminate (each engine
// read pulls the line, each application acquire then pays an
// invalidation). The check uses only words the engine must load
// anyway, so it is free of coherency cost, and an idle queue costs
// exactly what an unchecked peek costs.
func (q *Queue) ProcessPeekChecked(eng mem.View) (uint64, bool, error) {
	proc := eng.Load(q.process)
	rel := eng.Load(q.release)
	pending := rel - proc
	if pending == 0 {
		return 0, false, nil
	}
	if pending > q.capacity {
		return 0, false, fmt.Errorf("waitfree: queue invariant violated: process=%d release=%d capacity=%d",
			proc, rel, q.capacity)
	}
	return eng.Load(q.slot(proc)), true, nil
}

// AdvanceProcess moves the engine's process pointer past the buffer
// returned by the last ProcessPeek. Calling it with nothing pending is
// a bug in the engine; it panics rather than corrupt the invariant.
// The panic is reserved for trusted callers (tests, single-actor
// drivers); the engine's untrusted read path uses
// AdvanceProcessChecked, because on a queue whose control words the
// application can scribble, "nothing pending" may mean corruption
// rather than an engine bug.
func (q *Queue) AdvanceProcess(eng mem.View) {
	if err := q.AdvanceProcessChecked(eng); err != nil {
		panic(err.Error())
	}
}

// AdvanceProcessChecked is AdvanceProcess for the engine's read path
// over application-writable memory: instead of panicking when no buffer
// is processable — which there can only mean the application moved the
// release pointer out from under the engine — it returns an error so
// the engine can quarantine the endpoint and keep running.
func (q *Queue) AdvanceProcessChecked(eng mem.View) error {
	proc := eng.Load(q.process)
	rel := eng.Load(q.release)
	// pending is the unprocessed backlog; on a sane queue it is in
	// (0, capacity]. Zero means nothing to process; anything above
	// capacity means the release pointer moved backwards or wildly
	// forwards under the engine (free-running counters, so a backwards
	// move shows up as a huge unsigned difference).
	if pending := rel - proc; pending == 0 || pending > q.capacity {
		return fmt.Errorf("waitfree: AdvanceProcess with no processable buffer (process=%d release=%d)", proc, rel)
	}
	eng.Store(q.process, proc+1)
	return nil
}

// Acquire removes and returns the slot value at the tail on behalf of
// the application: a buffer the engine has finished processing. It
// returns false when no processed buffer is available.
func (q *Queue) Acquire(app mem.View) (uint64, bool) {
	acq := app.Load(q.acquire)
	proc := app.Load(q.process)
	if acq == proc {
		return 0, false
	}
	v := app.Load(q.slot(acq))
	app.Store(q.acquire, acq+1)
	return v, true
}

// AcquirePeek returns the value the next Acquire would return without
// consuming it.
func (q *Queue) AcquirePeek(app mem.View) (uint64, bool) {
	acq := app.Load(q.acquire)
	proc := app.Load(q.process)
	if acq == proc {
		return 0, false
	}
	return app.Load(q.slot(acq)), true
}

// Depths returns the number of buffers waiting to be processed by the
// engine and the number processed but not yet acquired, as seen by
// view's actor. The two sum to the queue occupancy.
func (q *Queue) Depths(v mem.View) (toProcess, toAcquire int) {
	rel := v.Load(q.release)
	proc := v.Load(q.process)
	acq := v.Load(q.acquire)
	return int(rel - proc), int(proc - acq)
}

// Full reports whether Release would fail.
func (q *Queue) Full(v mem.View) bool {
	return v.Load(q.release)-v.Load(q.acquire) >= q.capacity
}

// Empty reports whether all three pointers coincide (no buffers at any
// stage).
func (q *Queue) Empty(v mem.View) bool {
	rel := v.Load(q.release)
	return rel == v.Load(q.process) && rel == v.Load(q.acquire)
}

// DebugOffsets returns the queue's control-word offsets — release,
// process, acquire, and the first slot — for fault-injection tooling
// and tests that model wild application writes. Production code never
// needs these.
func (q *Queue) DebugOffsets() (release, process, acquire, slotBase int) {
	return q.release, q.process, q.acquire, q.slotBase
}

// CheckInvariant verifies acquire <= process <= release <= acquire+capacity.
// Used by tests and by the engine's validity-check mode.
func (q *Queue) CheckInvariant(v mem.View) error {
	rel := v.Load(q.release)
	proc := v.Load(q.process)
	acq := v.Load(q.acquire)
	if !(acq <= proc && proc <= rel && rel <= acq+q.capacity) {
		return fmt.Errorf("waitfree: queue invariant violated: acquire=%d process=%d release=%d capacity=%d",
			acq, proc, rel, q.capacity)
	}
	return nil
}
