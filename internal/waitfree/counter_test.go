package waitfree

import (
	"sync"
	"testing"
	"testing/quick"

	"flipc/internal/mem"
)

func newCounter(t *testing.T, padded bool) (*Counter, mem.View, mem.View) {
	t.Helper()
	a := newArena(t, 256)
	var base int
	var err error
	if padded {
		base, err = a.AllocLines(CounterWords(a.LineWords(), true) / a.LineWords())
	} else {
		base, err = a.AllocWords(CounterWords(a.LineWords(), false))
	}
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(a, base, a.LineWords(), padded)
	if err != nil {
		t.Fatal(err)
	}
	return c, mem.NewView(a, mem.ActorApp), mem.NewView(a, mem.ActorEngine)
}

func TestCounterWords(t *testing.T) {
	if CounterWords(4, true) != 8 {
		t.Fatalf("padded = %d, want 8", CounterWords(4, true))
	}
	if CounterWords(4, false) != 2 {
		t.Fatalf("unpadded = %d, want 2", CounterWords(4, false))
	}
}

func TestCounterValidation(t *testing.T) {
	a := newArena(t, 8)
	if _, err := NewCounter(a, 7, 4, false); err == nil {
		t.Fatal("out-of-arena counter accepted")
	}
	if _, err := NewCounter(a, 2, 4, true); err == nil {
		t.Fatal("misaligned padded counter accepted")
	}
	if _, err := NewCounter(a, -1, 4, false); err == nil {
		t.Fatal("negative base accepted")
	}
}

func TestCounterBasics(t *testing.T) {
	for _, padded := range []bool{true, false} {
		c, app, eng := newCounter(t, padded)
		if c.Read(app) != 0 {
			t.Fatal("fresh counter nonzero")
		}
		c.Incr(eng)
		c.Incr(eng)
		c.Incr(eng)
		if got := c.Read(app); got != 3 {
			t.Fatalf("Read = %d, want 3", got)
		}
		if got := c.ReadAndReset(app); got != 3 {
			t.Fatalf("ReadAndReset = %d, want 3", got)
		}
		if got := c.Read(app); got != 0 {
			t.Fatalf("Read after reset = %d, want 0", got)
		}
		c.Incr(eng)
		if got := c.Read(app); got != 1 {
			t.Fatalf("Read after new event = %d, want 1", got)
		}
		if got := c.Total(app); got != 4 {
			t.Fatalf("Total = %d, want 4", got)
		}
	}
}

// The defining property: increments racing with read-and-reset are
// never lost and never double-counted. Sum of all ReadAndReset returns
// plus the final residue must equal the total increments.
func TestCounterResetLosslessConcurrent(t *testing.T) {
	c, app, eng := newCounter(t, true)
	const incs = 200000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < incs; i++ {
			c.Incr(eng)
		}
	}()
	var harvested uint64
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			harvested += c.ReadAndReset(app)
		}
	}()
	wg.Wait()
	harvested += c.ReadAndReset(app)
	if harvested != incs {
		t.Fatalf("harvested %d events, want %d (lost or duplicated)", harvested, incs)
	}
}

// Property: for any interleaving of increments and resets executed
// sequentially, harvest + residue == total increments, and every
// ReadAndReset return equals the events since the previous reset.
func TestQuickCounterInterleavings(t *testing.T) {
	prop := func(ops []bool) bool {
		a, err := mem.New(mem.Config{ControlWords: 64, LineWords: 4})
		if err != nil {
			return false
		}
		base, _ := a.AllocLines(CounterWords(4, true) / 4)
		c, err := NewCounter(a, base, 4, true)
		if err != nil {
			return false
		}
		app := mem.NewView(a, mem.ActorApp)
		eng := mem.NewView(a, mem.ActorEngine)
		var total, harvested, sinceReset uint64
		for _, incr := range ops {
			if incr {
				c.Incr(eng)
				total++
				sinceReset++
			} else {
				got := c.ReadAndReset(app)
				if got != sinceReset {
					return false
				}
				harvested += got
				sinceReset = 0
			}
		}
		return harvested+c.Read(app) == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterPaddedLineIsolation(t *testing.T) {
	a := newArena(t, 256)
	base, err := a.AllocLines(CounterWords(4, true) / 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(a, base, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	tr := &lineTracer{arena: a, writers: map[int]map[mem.Actor]bool{}}
	a.SetTracer(tr)
	app := mem.NewView(a, mem.ActorApp)
	eng := mem.NewView(a, mem.ActorEngine)
	c.Incr(eng)
	c.ReadAndReset(app)
	c.Incr(eng)
	for line, actors := range tr.writers {
		if actors[mem.ActorApp] && actors[mem.ActorEngine] {
			t.Fatalf("padded counter line %d written by both actors", line)
		}
	}
}
