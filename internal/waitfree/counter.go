package waitfree

import (
	"fmt"

	"flipc/internal/mem"
)

// Counter is the paper's two-location wait-free event counter, used to
// track discarded messages per endpoint (§Wait-Free Synchronization).
//
// A single shared word cannot support an application-side
// "read and reset" without losing increments that land between the read
// and the zeroing write. Instead:
//
//   - count (engine-written) is incremented on each event;
//   - snapshot (application-written) holds the count value as of the
//     last read-and-reset.
//
// The logical value is count - snapshot; read-and-reset copies count
// into snapshot. Events occurring between the application's read of
// count and its store to snapshot are not lost: they keep count ahead
// of the stored snapshot and surface on the next read.
type Counter struct {
	arena    *mem.Arena
	count    int // engine-written
	snapshot int // application-written
}

// CounterWords returns the control words needed for a counter in the
// given layout. The padded layout puts each word on its own line so an
// engine increment never invalidates the application's line and vice
// versa.
func CounterWords(lineWords int, padded bool) int {
	if padded {
		return 2 * lineWords
	}
	return 2
}

// NewCounter lays out a counter at base. The caller must have reserved
// CounterWords words (line-aligned when padded).
func NewCounter(a *mem.Arena, base, lineWords int, padded bool) (*Counter, error) {
	words := CounterWords(lineWords, padded)
	if base < 0 || !a.ValidWord(base) || !a.ValidWord(base+words-1) {
		return nil, fmt.Errorf("waitfree: counter [%d,%d) outside arena", base, base+words)
	}
	c := &Counter{arena: a, count: base}
	if padded {
		if base%lineWords != 0 {
			return nil, fmt.Errorf("waitfree: padded counter base %d not line-aligned", base)
		}
		c.snapshot = base + lineWords
	} else {
		c.snapshot = base + 1
	}
	return c, nil
}

// Incr increments the event count on behalf of the engine. Load+store
// is sufficient because the engine is the only writer of count.
func (c *Counter) Incr(eng mem.View) {
	eng.Store(c.count, eng.Load(c.count)+1)
}

// Read returns the number of events since the last reset, without
// resetting.
func (c *Counter) Read(v mem.View) uint64 {
	return v.Load(c.count) - v.Load(c.snapshot)
}

// ReadAndReset returns the number of events since the last reset and
// resets the counter, atomically in the sense that no event is ever
// counted twice or lost: the application copies its read of count into
// snapshot, so increments racing with the reset remain pending.
func (c *Counter) ReadAndReset(app mem.View) uint64 {
	count := app.Load(c.count)
	val := count - app.Load(c.snapshot)
	app.Store(c.snapshot, count)
	return val
}

// Total returns the all-time event count (ignores resets).
func (c *Counter) Total(v mem.View) uint64 {
	return v.Load(c.count)
}
