package waitfree

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"flipc/internal/mem"
)

func newArena(t *testing.T, words int) *mem.Arena {
	t.Helper()
	a, err := mem.New(mem.Config{ControlWords: words, PayloadBytes: 0, LineWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func newQueue(t *testing.T, capacity int, padded bool) (*Queue, mem.View, mem.View) {
	t.Helper()
	a := newArena(t, 4096)
	var base int
	var err error
	if padded {
		base, err = a.AllocLines(QueueWords(capacity, a.LineWords(), true) / a.LineWords())
	} else {
		base, err = a.AllocWords(QueueWords(capacity, a.LineWords(), false))
	}
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(a, base, capacity, a.LineWords(), padded)
	if err != nil {
		t.Fatal(err)
	}
	return q, mem.NewView(a, mem.ActorApp), mem.NewView(a, mem.ActorEngine)
}

func TestQueueWordsPadded(t *testing.T) {
	// 3 pointer lines + 2 slot lines for capacity 8, line=4.
	if got := QueueWords(8, 4, true); got != 20 {
		t.Fatalf("QueueWords(8,4,padded) = %d, want 20", got)
	}
	if got := QueueWords(8, 4, false); got != 11 {
		t.Fatalf("QueueWords(8,4,unpadded) = %d, want 11", got)
	}
}

func TestNewQueueValidation(t *testing.T) {
	a := newArena(t, 64)
	if _, err := NewQueue(a, 0, 3, 4, false); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
	if _, err := NewQueue(a, 0, 1, 4, false); err == nil {
		t.Fatal("capacity 1 accepted")
	}
	if _, err := NewQueue(a, 60, 8, 4, false); err == nil {
		t.Fatal("out-of-arena queue accepted")
	}
	if _, err := NewQueue(a, 2, 4, 4, true); err == nil {
		t.Fatal("misaligned padded base accepted")
	}
	if _, err := NewQueue(a, -4, 4, 4, false); err == nil {
		t.Fatal("negative base accepted")
	}
}

func TestQueueLifecycle(t *testing.T) {
	for _, padded := range []bool{true, false} {
		q, app, eng := newQueue(t, 4, padded)
		if !q.Empty(app) {
			t.Fatal("new queue not empty")
		}
		if q.Capacity() != 4 {
			t.Fatalf("capacity = %d", q.Capacity())
		}

		// App releases two buffers.
		if !q.Release(app, 100) || !q.Release(app, 101) {
			t.Fatal("release failed on non-full queue")
		}
		toProc, toAcq := q.Depths(app)
		if toProc != 2 || toAcq != 0 {
			t.Fatalf("depths = %d,%d", toProc, toAcq)
		}

		// Engine processes them in order.
		v, ok := q.ProcessPeek(eng)
		if !ok || v != 100 {
			t.Fatalf("ProcessPeek = %d,%v", v, ok)
		}
		q.AdvanceProcess(eng)
		v, ok = q.ProcessPeek(eng)
		if !ok || v != 101 {
			t.Fatalf("second ProcessPeek = %d,%v", v, ok)
		}
		q.AdvanceProcess(eng)
		if _, ok := q.ProcessPeek(eng); ok {
			t.Fatal("ProcessPeek found phantom buffer")
		}

		// App acquires both back, in order.
		v, ok = q.Acquire(app)
		if !ok || v != 100 {
			t.Fatalf("Acquire = %d,%v", v, ok)
		}
		v, ok = q.AcquirePeek(app)
		if !ok || v != 101 {
			t.Fatalf("AcquirePeek = %d,%v", v, ok)
		}
		v, ok = q.Acquire(app)
		if !ok || v != 101 {
			t.Fatalf("Acquire2 = %d,%v", v, ok)
		}
		if _, ok := q.Acquire(app); ok {
			t.Fatal("Acquire on empty succeeded")
		}
		if !q.Empty(app) {
			t.Fatal("queue not empty after full cycle")
		}
		if err := q.CheckInvariant(app); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueueFull(t *testing.T) {
	q, app, eng := newQueue(t, 2, true)
	if !q.Release(app, 1) || !q.Release(app, 2) {
		t.Fatal("fill failed")
	}
	if q.Release(app, 3) {
		t.Fatal("release on full queue succeeded")
	}
	if !q.Full(app) {
		t.Fatal("Full() false on full queue")
	}
	// Processing alone does not free space; acquire does.
	if _, ok := q.ProcessPeek(eng); !ok {
		t.Fatal("peek failed")
	}
	q.AdvanceProcess(eng)
	if q.Release(app, 3) {
		t.Fatal("release succeeded while buffer unacquired")
	}
	if _, ok := q.Acquire(app); !ok {
		t.Fatal("acquire failed")
	}
	if !q.Release(app, 3) {
		t.Fatal("release failed after acquire freed a slot")
	}
}

func TestAcquireCannotPassProcess(t *testing.T) {
	q, app, eng := newQueue(t, 4, true)
	q.Release(app, 7)
	if _, ok := q.Acquire(app); ok {
		t.Fatal("acquired a buffer the engine has not processed")
	}
	if _, ok := q.ProcessPeek(eng); !ok {
		t.Fatal("peek failed")
	}
	q.AdvanceProcess(eng)
	if v, ok := q.Acquire(app); !ok || v != 7 {
		t.Fatalf("Acquire = %d,%v", v, ok)
	}
}

func TestAdvanceProcessPanicsWhenEmpty(t *testing.T) {
	q, _, eng := newQueue(t, 4, true)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceProcess on empty did not panic")
		}
	}()
	q.AdvanceProcess(eng)
}

func TestQueueWrapAround(t *testing.T) {
	q, app, eng := newQueue(t, 4, false)
	for round := 0; round < 100; round++ {
		v := uint64(round * 3)
		if !q.Release(app, v) {
			t.Fatalf("round %d: release failed", round)
		}
		got, ok := q.ProcessPeek(eng)
		if !ok || got != v {
			t.Fatalf("round %d: peek = %d,%v", round, got, ok)
		}
		q.AdvanceProcess(eng)
		got, ok = q.Acquire(app)
		if !ok || got != v {
			t.Fatalf("round %d: acquire = %d,%v", round, got, ok)
		}
		if err := q.CheckInvariant(app); err != nil {
			t.Fatal(err)
		}
	}
}

// The central concurrency test: an application goroutine and an engine
// goroutine hammer the queue; FIFO order and the invariant must hold,
// and the race detector must stay quiet (single-writer-per-word).
func TestQueueConcurrentFIFO(t *testing.T) {
	q, app, eng := newQueue(t, 8, true)
	const n = 50000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // engine
		defer wg.Done()
		processed := uint64(0)
		for processed < n {
			if _, ok := q.ProcessPeek(eng); ok {
				q.AdvanceProcess(eng)
				processed++
			} else {
				runtime.Gosched() // single-CPU hosts: don't starve the app
			}
		}
	}()
	errs := make(chan error, 1)
	go func() { // app: release then acquire, interleaved
		defer wg.Done()
		next := uint64(0)
		expect := uint64(0)
		for expect < n {
			progress := false
			if next < n && q.Release(app, next) {
				next++
				progress = true
			}
			if v, ok := q.Acquire(app); ok {
				progress = true
				if v != expect {
					select {
					case errs <- errOutOfOrder(v, expect):
					default:
					}
					return
				}
				expect++
			}
			if !progress {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if !q.Empty(app) {
		t.Fatal("queue not empty at end")
	}
}

type orderErr struct{ got, want uint64 }

func errOutOfOrder(got, want uint64) error { return orderErr{got, want} }
func (e orderErr) Error() string           { return "out of order acquire" }

// Property: any valid interleaving of release/process/acquire steps
// preserves the pointer invariant and FIFO delivery.
func TestQuickQueueInterleavings(t *testing.T) {
	prop := func(ops []uint8) bool {
		a, err := mem.New(mem.Config{ControlWords: 256, LineWords: 4})
		if err != nil {
			return false
		}
		base, err := a.AllocLines(QueueWords(4, 4, true) / 4)
		if err != nil {
			return false
		}
		q, err := NewQueue(a, base, 4, 4, true)
		if err != nil {
			return false
		}
		app := mem.NewView(a, mem.ActorApp)
		eng := mem.NewView(a, mem.ActorEngine)
		var released, processed, acquired uint64
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if q.Release(app, released) {
					released++
				}
			case 1:
				if v, ok := q.ProcessPeek(eng); ok {
					if v != processed {
						return false // engine must see FIFO
					}
					q.AdvanceProcess(eng)
					processed++
				}
			case 2:
				if v, ok := q.Acquire(app); ok {
					if v != acquired {
						return false // app must reclaim FIFO
					}
					acquired++
				}
			}
			if err := q.CheckInvariant(app); err != nil {
				return false
			}
			if acquired > processed || processed > released || released > acquired+4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The padded layout must put the three pointers on distinct lines and
// keep engine-written words off application-written lines.
func TestPaddedLayoutLineIsolation(t *testing.T) {
	a := newArena(t, 4096)
	base, err := a.AllocLines(QueueWords(8, 4, true) / 4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(a, base, 8, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	tr := &lineTracer{arena: a, writers: map[int]map[mem.Actor]bool{}}
	a.SetTracer(tr)
	app := mem.NewView(a, mem.ActorApp)
	eng := mem.NewView(a, mem.ActorEngine)
	for i := 0; i < 16; i++ {
		q.Release(app, uint64(i))
		if _, ok := q.ProcessPeek(eng); ok {
			q.AdvanceProcess(eng)
		}
		q.Acquire(app)
	}
	for line, actors := range tr.writers {
		if actors[mem.ActorApp] && actors[mem.ActorEngine] {
			t.Fatalf("line %d written by both app and engine in padded layout", line)
		}
	}
}

// In the unpadded layout, app and engine DO write the same line — that
// is the false sharing the paper tuned away; assert we reproduce it.
func TestUnpaddedLayoutSharesLines(t *testing.T) {
	a := newArena(t, 4096)
	base, err := a.AllocLines((QueueWords(8, 4, false) + 3) / 4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(a, base, 8, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	tr := &lineTracer{arena: a, writers: map[int]map[mem.Actor]bool{}}
	a.SetTracer(tr)
	app := mem.NewView(a, mem.ActorApp)
	eng := mem.NewView(a, mem.ActorEngine)
	q.Release(app, 1)
	if _, ok := q.ProcessPeek(eng); ok {
		q.AdvanceProcess(eng)
	}
	q.Acquire(app)
	shared := false
	for _, actors := range tr.writers {
		if actors[mem.ActorApp] && actors[mem.ActorEngine] {
			shared = true
		}
	}
	if !shared {
		t.Fatal("unpadded layout shows no app/engine line sharing; ablation would be vacuous")
	}
}

type lineTracer struct {
	arena   *mem.Arena
	writers map[int]map[mem.Actor]bool
}

func (l *lineTracer) OnLoad(a mem.Actor, w int) {}
func (l *lineTracer) OnStore(a mem.Actor, w int) {
	line := l.arena.LineOf(w)
	if l.writers[line] == nil {
		l.writers[line] = map[mem.Actor]bool{}
	}
	l.writers[line][a] = true
}
func (l *lineTracer) OnBusLock(a mem.Actor, w int) {}

func TestAdvanceProcessChecked(t *testing.T) {
	q, app, eng := newQueue(t, 4, true)
	if err := q.AdvanceProcessChecked(eng); err == nil {
		t.Fatal("empty-queue advance accepted")
	}
	if !q.Release(app, 7) {
		t.Fatal("release failed")
	}
	if err := q.AdvanceProcessChecked(eng); err != nil {
		t.Fatalf("advance with pending buffer: %v", err)
	}
	// The corruption case the checked form exists for: the application
	// yanks the release pointer backwards between the engine's peek and
	// advance. The checked advance must degrade to an error, never panic.
	rel, _, _, _ := q.DebugOffsets()
	app.Store(rel, 0)
	if err := q.AdvanceProcessChecked(eng); err == nil {
		t.Fatal("advance past scribbled release pointer accepted")
	}
}

func TestAdvanceProcessPanicsForTrustedCallers(t *testing.T) {
	q, _, eng := newQueue(t, 4, true)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceProcess on empty queue did not panic")
		}
	}()
	q.AdvanceProcess(eng)
}

func TestDebugOffsets(t *testing.T) {
	q, app, eng := newQueue(t, 4, true)
	rel, proc, acq, slots := q.DebugOffsets()
	// Offsets must be the live control words: a store through them is
	// visible to normal operations.
	app.Store(rel, 3)
	app.Store(slots, 42)
	if v, ok := q.ProcessPeek(eng); !ok || v != 42 {
		t.Fatalf("ProcessPeek after raw stores = %d,%v", v, ok)
	}
	if proc == rel || acq == rel || proc == acq {
		t.Fatal("control-word offsets alias")
	}
}
