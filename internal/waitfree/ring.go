package waitfree

import (
	"fmt"

	"flipc/internal/mem"
)

// Ring is a single-producer/single-consumer wait-free ring under the
// load/store-only memory model. FLIPC uses it as the engine→kernel
// wakeup doorbell: the engine (producer) posts the address of an
// endpoint whose blocked receiver should be presented to the
// scheduler, and the kernel (consumer) drains it. The producer writes
// the slots and the prod pointer; the consumer writes only the cons
// pointer — single writer per word, as everywhere in FLIPC.
type Ring struct {
	arena    *mem.Arena
	prod     int // producer-written
	cons     int // consumer-written
	slotBase int // producer-written
	capacity uint64
}

// RingWords returns the control words needed for a ring of the given
// capacity (a power of two).
func RingWords(capacity, lineWords int, padded bool) int {
	if padded {
		slotLines := (capacity + lineWords - 1) / lineWords
		return (2 + slotLines) * lineWords
	}
	return 2 + capacity
}

// NewRing lays out a ring at base. Capacity must be a power of two >= 2.
func NewRing(a *mem.Arena, base, capacity, lineWords int, padded bool) (*Ring, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("waitfree: ring capacity %d must be a power of two >= 2", capacity)
	}
	words := RingWords(capacity, lineWords, padded)
	if base < 0 || !a.ValidWord(base) || !a.ValidWord(base+words-1) {
		return nil, fmt.Errorf("waitfree: ring [%d,%d) outside arena", base, base+words)
	}
	r := &Ring{arena: a, capacity: uint64(capacity)}
	if padded {
		if base%lineWords != 0 {
			return nil, fmt.Errorf("waitfree: padded ring base %d not line-aligned", base)
		}
		r.prod = base
		r.cons = base + lineWords
		r.slotBase = base + 2*lineWords
	} else {
		r.prod = base
		r.cons = base + 1
		r.slotBase = base + 2
	}
	return r, nil
}

// Capacity returns the number of slots.
func (r *Ring) Capacity() int { return int(r.capacity) }

// Push appends v on behalf of the producer. It returns false when the
// ring is full; the producer (the engine) must never block, so callers
// typically retry on a later event-loop pass or drop with accounting.
func (r *Ring) Push(prod mem.View, v uint64) bool {
	p := prod.Load(r.prod)
	c := prod.Load(r.cons)
	if p-c >= r.capacity {
		return false
	}
	prod.Store(r.slotBase+int(p&(r.capacity-1)), v)
	prod.Store(r.prod, p+1)
	return true
}

// Pop removes and returns the oldest value on behalf of the consumer,
// reporting false when the ring is empty.
func (r *Ring) Pop(cons mem.View) (uint64, bool) {
	c := cons.Load(r.cons)
	p := cons.Load(r.prod)
	if c == p {
		return 0, false
	}
	v := cons.Load(r.slotBase + int(c&(r.capacity-1)))
	cons.Store(r.cons, c+1)
	return v, true
}

// Len returns the number of queued values as seen by view's actor.
func (r *Ring) Len(v mem.View) int {
	return int(v.Load(r.prod) - v.Load(r.cons))
}
