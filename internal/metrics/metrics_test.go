package metrics

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestCounterSingleWriter(t *testing.T) {
	var c Counter
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	c.Add(24)
	if c.Value() != 1024 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Set(7)
	if c.Value() != 7 {
		t.Fatalf("after Set, value = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v", g.Value())
	}
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("value = %v", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("Counter(a) returned two instruments")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram(h) returned two instruments")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge(g) returned two instruments")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("sent").Add(42)
	r.Gauge("util").Set(0.5)
	r.Histogram("lat").Observe(100)
	r.Func("derived", func() float64 { return 9 })
	s := r.Snapshot()
	if s.Counters["sent"] != 42 {
		t.Fatalf("sent = %d", s.Counters["sent"])
	}
	if s.Gauges["util"] != 0.5 || s.Gauges["derived"] != 9 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if h := s.Histograms["lat"]; h.Count != 1 || h.Min != 100 || h.Max != 100 {
		t.Fatalf("hist = %+v", h)
	}
	cs, gs, hs := s.Names()
	if len(cs) != 1 || len(gs) != 2 || len(hs) != 1 {
		t.Fatalf("names = %v %v %v", cs, gs, hs)
	}
}

// TestConcurrentSnapshotVsWriter is the registry's contract test: one
// writer per instrument hammering plain-store updates while many
// readers snapshot and other goroutines register new instruments.
// Must stay clean under -race.
func TestConcurrentSnapshotVsWriter(t *testing.T) {
	r := NewRegistry()
	const iters = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// One single-writer goroutine per instrument.
	wg.Add(3)
	go func() {
		defer wg.Done()
		c := r.Counter("events")
		for i := 0; i < iters; i++ {
			c.Inc()
		}
	}()
	go func() {
		defer wg.Done()
		h := r.Histogram("latency")
		for i := 0; i < iters; i++ {
			h.Observe(uint64(i % 5000))
		}
	}()
	go func() {
		defer wg.Done()
		g := r.Gauge("depth")
		for i := 0; i < iters; i++ {
			g.Set(float64(i))
		}
	}()
	// Concurrent registrations (cold path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.Counter(fmt.Sprintf("extra_%d", i)).Inc()
		}
	}()
	// Readers snapshot continuously until writers finish.
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				if s.Counters["events"] > iters {
					t.Error("counter overshot")
					return
				}
				if h, ok := s.Histograms["latency"]; ok && h.Count > 0 {
					if q := h.Quantile(0.5); math.IsNaN(q) {
						t.Error("NaN quantile on non-empty histogram")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := r.Snapshot()
	if s.Counters["events"] != iters {
		t.Fatalf("events = %d, want %d", s.Counters["events"], iters)
	}
	if h := s.Histograms["latency"]; h.Count != iters {
		t.Fatalf("latency count = %d, want %d", h.Count, iters)
	}
}

func TestName(t *testing.T) {
	if got := Name("m"); got != "m" {
		t.Fatalf("Name(m) = %q", got)
	}
	if got := Name("m", "ep", "5"); got != `m{ep="5"}` {
		t.Fatalf("got %q", got)
	}
	if got := Name("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Fatalf("got %q", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter(fmt.Sprintf("c%d", i)).Inc()
	}
	h := r.Histogram("h")
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
