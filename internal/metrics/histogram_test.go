package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 100,
		1 << 10, 1<<10 + 1, 1 << 20, 1 << 40, 1 << 62, math.MaxUint64} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		if i >= HistBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		prev = i
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	// Every value must fall inside its own bucket's bounds, and bounds
	// must tile the axis without gaps.
	for i := 0; i < HistBuckets; i++ {
		lo, hi := bucketBounds(i)
		if bucketIndex(lo) != i {
			t.Fatalf("bucket %d: lo %d maps to %d", i, lo, bucketIndex(lo))
		}
		if hi > lo && bucketIndex(hi-1) != i {
			t.Fatalf("bucket %d: hi-1 %d maps to %d", i, hi-1, bucketIndex(hi-1))
		}
		if i > 0 {
			_, prevHi := bucketBounds(i - 1)
			if prevHi != lo {
				t.Fatalf("gap between bucket %d and %d: %d != %d", i-1, i, prevHi, lo)
			}
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("count = %d", s.Count)
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Fatal("empty histogram must yield NaN quantile and mean")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1996))
	// Log-uniform samples over [1, 1e7] ns — the latency range the
	// instruments are built for.
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.Float64() * math.Log(1e7))
		h.Observe(uint64(v))
		vals = append(vals, math.Floor(v))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := s.Quantile(q)
		exact := exactQuantile(vals, q)
		relErr := math.Abs(got-exact) / exact
		if relErr > 1.0/8 { // bucket width 1/16, allow 2x for interpolation + sampling
			t.Errorf("q=%v: got %.0f, exact %.0f, rel err %.3f", q, got, exact, relErr)
		}
	}
	if s.Min > uint64(exactQuantile(vals, 0)) {
		t.Fatalf("min %d above smallest sample", s.Min)
	}
}

func exactQuantile(vals []float64, q float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return sorted[int(q*float64(len(sorted)-1))]
}

func TestHistogramSmallExact(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{3, 3, 3, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if s.Min != 3 || s.Max != 7 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if got := s.Mean(); got != 4 {
		t.Fatalf("mean = %v, want 4", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := uint64(0); i < 100; i++ {
		a.Observe(i)
		b.Observe(i + 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d", sa.Count)
	}
	if sa.Min != 0 || sa.Max != 1099 {
		t.Fatalf("merged min/max = %d/%d", sa.Min, sa.Max)
	}
	if q := sa.Quantile(0.25); q > 60 {
		t.Fatalf("p25 = %v, want within the low cluster", q)
	}
	if q := sa.Quantile(0.75); q < 950 {
		t.Fatalf("p75 = %v, want within the high cluster", q)
	}
	// Merging into an empty snapshot copies.
	var empty HistSnapshot
	empty.Merge(sb)
	if empty.Count != 100 || empty.Min != 1000 {
		t.Fatalf("merge into empty: %+v", empty)
	}
	// Merging an empty snapshot is a no-op.
	before := sb.Count
	sb.Merge(HistSnapshot{})
	if sb.Count != before {
		t.Fatal("merge of empty changed count")
	}
}
