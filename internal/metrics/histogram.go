package metrics

import (
	"math"
	"math/bits"
)

// Histogram bucket layout: log-linear, the bounded-error scheme of
// HdrHistogram-style recorders. Values 0..15 get exact unit buckets;
// above that each power-of-two range is split into 16 linear
// sub-buckets, so the relative quantile error is bounded by 1/16
// (≈6%) at any magnitude while the whole table stays a fixed 976
// words. That bound is what lets one histogram cover nanosecond poll
// passes and second-long outages without configuration.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // 16
	// HistBuckets is the fixed bucket count: histSubCount exact unit
	// buckets plus 16 sub-buckets for each of the 60 remaining
	// power-of-two ranges of a uint64.
	HistBuckets = histSubCount + (64-histSubBits)*histSubCount // 976
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // 2^exp <= v < 2^(exp+1), exp >= histSubBits
	sub := int(v>>(uint(exp)-histSubBits)) & (histSubCount - 1)
	return histSubCount + (exp-histSubBits)*histSubCount + sub
}

// bucketBounds returns bucket i's value range [lo, hi).
func bucketBounds(i int) (lo, hi uint64) {
	if i < histSubCount {
		return uint64(i), uint64(i) + 1
	}
	block := uint(i-histSubCount) / histSubCount
	sub := uint64(i-histSubCount) % histSubCount
	lo = (histSubCount + sub) << block
	return lo, lo + 1<<block
}

// Histogram is a bounded log-scale histogram of non-negative integer
// samples (latencies in nanoseconds, queue depths, batch sizes).
// One goroutine observes; any goroutine snapshots. All updates are
// plain loads and stores of independent words — wait-free and
// allocation-free — so it can sit directly on the message path.
//
// The zero value must be initialized through Registry.Histogram (or
// NewHistogram); the instrument is a fixed ~8 KB table.
type Histogram struct {
	count Counter
	sum   Counter
	min   Counter // value+1, so 0 means "no sample yet"
	max   Counter
	bkt   []Counter
}

// NewHistogram creates a standalone histogram (outside any registry).
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.init()
	return h
}

func (h *Histogram) init() { h.bkt = make([]Counter, HistBuckets) }

// Observe records one sample. Single writer only; never allocates.
func (h *Histogram) Observe(v uint64) {
	h.bkt[bucketIndex(v)].Inc()
	h.count.Inc()
	h.sum.Add(v)
	if m := h.min.Value(); m == 0 || v+1 < m {
		h.min.Set(v + 1)
	}
	if v > h.max.Value() {
		h.max.Set(v)
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Value() }

// HistSnapshot is a point-in-time copy of a histogram, safe to read,
// merge, and query at leisure.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Min     uint64 // 0 when empty
	Max     uint64
	Buckets []uint64 // len HistBuckets; nil when Count == 0
}

// Snapshot copies the histogram with plain loads. A snapshot racing
// the writer may be transiently skewed by the in-flight sample.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Value(),
		Sum:   h.sum.Value(),
		Max:   h.max.Value(),
	}
	if m := h.min.Value(); m > 0 {
		s.Min = m - 1
	}
	if s.Count == 0 {
		return s
	}
	s.Buckets = make([]uint64, HistBuckets)
	for i := range h.bkt {
		s.Buckets[i] = h.bkt[i].Value()
	}
	return s
}

// Mean returns the average sample, or NaN when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-th quantile (0 <= q <= 1) with linear
// interpolation inside the landing bucket. It returns NaN on an empty
// snapshot or out-of-range q. The result's relative error is bounded
// by the bucket width (≤ 1/16 of the value).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q < 0 || q > 1 || len(s.Buckets) == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count-1)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if rank < cum+float64(n) {
			lo, hi := bucketBounds(i)
			v := float64(lo)
			if hi-lo > 1 {
				// Interpolate inside wide buckets; unit buckets hold
				// exactly the value lo.
				frac := (rank - cum + 0.5) / float64(n)
				v += frac * float64(hi-lo)
			}
			// Clamp to the observed extremes so tiny histograms do not
			// report values outside [Min, Max].
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum += float64(n)
	}
	return float64(s.Max)
}

// Merge folds o into s (bucket-wise addition), for aggregating
// per-endpoint histograms into a node-wide view. Both snapshots must
// come from this package's fixed layout.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Min = o.Min
		s.Max = o.Max
	} else {
		if o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if s.Buckets == nil {
		s.Buckets = make([]uint64, HistBuckets)
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
}
