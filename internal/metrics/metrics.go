// Package metrics is FLIPC's wait-free observability toolkit: a
// registry of instruments that hot paths update with plain loads and
// stores and readers snapshot without locks — the same discipline the
// communication buffer imposes on the engine/application boundary
// (see internal/waitfree).
//
// Every instrument follows the single-writer rule: exactly one
// goroutine writes it, any number read it. Updates are a load and a
// store of a machine word (never a read-modify-write, never a lock),
// so an instrumented hot path cannot be stalled by a scraper and a
// scraper never waits on a hot path. Readers may observe a snapshot
// mid-update (e.g. a histogram whose count is one ahead of its bucket
// sums); that transient skew is the documented price of wait-freedom,
// exactly as with the paper's two-location drop counters.
//
// The registry itself is copy-on-write: registration (cold path) takes
// a mutex and swaps a new instrument map in atomically; lookups and
// snapshots only dereference the current map. Hot paths should hold
// the instrument pointer, not look it up per event.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a single-writer cumulative counter. The writer calls Inc
// or Add; any goroutine may call Value. The update is a plain
// load+store (wait-free, never a locked RMW), which is safe because
// only one goroutine writes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Single writer only.
func (c *Counter) Inc() { c.v.Store(c.v.Load() + 1) }

// Add adds n. Single writer only.
func (c *Counter) Add(n uint64) { c.v.Store(c.v.Load() + n) }

// Set overwrites the value — for mirroring a counter maintained
// elsewhere (e.g. an engine Stats field) into the registry.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count. Safe from any goroutine.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a single-writer instantaneous value.
type Gauge struct {
	v atomic.Uint64 // float64 bits
}

// Set stores the value. Single writer only (the store itself is
// atomic, so concurrent writers would not corrupt — they would race).
func (g *Gauge) Set(x float64) { g.v.Store(math.Float64bits(x)) }

// Value returns the current value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// instruments is one immutable registry generation.
type instruments struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// Registry holds named instruments. Registration copies the instrument
// maps; readers and hot-path writers never take the lock.
type Registry struct {
	mu  sync.Mutex // registration only
	cur atomic.Pointer[instruments]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.cur.Store(&instruments{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
	})
	return r
}

// clone copies the current generation for a registration.
func (r *Registry) clone() *instruments {
	old := r.cur.Load()
	n := &instruments{
		counters: make(map[string]*Counter, len(old.counters)+1),
		gauges:   make(map[string]*Gauge, len(old.gauges)+1),
		hists:    make(map[string]*Histogram, len(old.hists)+1),
		funcs:    make(map[string]func() float64, len(old.funcs)+1),
	}
	for k, v := range old.counters {
		n.counters[k] = v
	}
	for k, v := range old.gauges {
		n.gauges[k] = v
	}
	for k, v := range old.hists {
		n.hists[k] = v
	}
	for k, v := range old.funcs {
		n.funcs[k] = v
	}
	return n
}

// Counter returns the named counter, creating it on first use. Names
// follow Prometheus conventions; a label set may be appended with
// Name. The returned instrument must have a single writer.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.cur.Load().counters[name]; ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cur.Load().counters[name]; ok {
		return c
	}
	n := r.clone()
	c := &Counter{}
	n.counters[name] = c
	r.cur.Store(n)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.cur.Load().gauges[name]; ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.cur.Load().gauges[name]; ok {
		return g
	}
	n := r.clone()
	g := &Gauge{}
	n.gauges[name] = g
	r.cur.Store(n)
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.cur.Load().hists[name]; ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.cur.Load().hists[name]; ok {
		return h
	}
	n := r.clone()
	h := &Histogram{}
	h.init()
	n.hists[name] = h
	r.cur.Store(n)
	return h
}

// Func registers a gauge computed at snapshot time — the bridge for
// components that already maintain their own atomics (e.g. the TCP
// transport's loss counters). fn must be safe to call from any
// goroutine.
func (r *Registry) Func(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.clone()
	n.funcs[name] = fn
	r.cur.Store(n)
}

// Snapshot is a point-in-time copy of every instrument. Func gauges
// are evaluated into Gauges.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Snapshot reads every instrument without blocking any writer.
func (r *Registry) Snapshot() Snapshot {
	ins := r.cur.Load()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(ins.counters)),
		Gauges:     make(map[string]float64, len(ins.gauges)+len(ins.funcs)),
		Histograms: make(map[string]HistSnapshot, len(ins.hists)),
	}
	for k, c := range ins.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range ins.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range ins.funcs {
		s.Gauges[k] = fn()
	}
	for k, h := range ins.hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// Names returns all instrument names, sorted — for deterministic
// rendering.
func (s Snapshot) Names() (counters, gauges, hists []string) {
	for k := range s.Counters {
		counters = append(counters, k)
	}
	for k := range s.Gauges {
		gauges = append(gauges, k)
	}
	for k := range s.Histograms {
		hists = append(hists, k)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// Name builds an instrument name with a Prometheus-style label set:
// Name("flipc_recv_latency_ns", "endpoint", "5") returns
// `flipc_recv_latency_ns{endpoint="5"}`. Pairs are key, value, key,
// value, ...; an odd tail is ignored.
func Name(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	out := base + "{"
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			out += ","
		}
		out += kv[i] + `="` + kv[i+1] + `"`
	}
	return out + "}"
}
