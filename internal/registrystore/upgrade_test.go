package registrystore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"flipc/internal/nameservice"
	"flipc/internal/recio"
	"flipc/internal/wire"
)

// TestMixedVersionWALReplay replays a log written across the frame
// upgrade: v0 records from an old incarnation followed by v1 records
// (with and without cursor acks) from the new one. A node restarting
// mid-upgrade must reconstruct the same registry state from both.
func TestMixedVersionWALReplay(t *testing.T) {
	dir := t.TempDir()
	a, err := wire.MakeAddr(3, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Type: RecDeclare, Seq: 1, Topic: "alpha", Class: 2, Ver: recio.V0},
		{Type: RecSubscribe, Seq: 2, Topic: "alpha", Addr: a, Ver: recio.V0},
		{Type: RecFence, Seq: 3, Gen: 5, Ver: recio.V0},
		{Type: RecDeclare, Seq: 4, Topic: "beta", Class: 1, Ver: recio.V1},
		{Type: RecCursorAck, Seq: 5, Topic: "alpha", Sub: "node3/app", Ack: 77, Ver: recio.V1},
	}
	var wal []byte
	for i := range recs {
		wal, err = AppendRecord(wal, &recs[i])
		if err != nil {
			t.Fatalf("append %v: %v", recs[i].Type, err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := nameservice.NewTopicRegistry()
	s, err := Open(dir, reg, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open mixed-version log: %v", err)
	}
	defer s.Close()
	if s.Seq() != 5 {
		t.Fatalf("seq = %d, want 5", s.Seq())
	}
	snap, ok := reg.Snapshot("alpha")
	if !ok || len(snap.Subs) != 1 || snap.Subs[0].Addr != a {
		t.Fatalf("alpha membership not reconstructed: %+v (ok=%v)", snap, ok)
	}
	if cur, ok := reg.CursorOf("alpha", "node3/app"); !ok || cur != 77 {
		t.Fatalf("cursor = %d (ok=%v), want 77", cur, ok)
	}
	if _, ok := reg.Snapshot("beta"); !ok {
		t.Fatal("beta not reconstructed from v1 record")
	}
	if reg.RegistryGen() != 5 {
		t.Fatalf("registry gen = %d, want 5", reg.RegistryGen())
	}
}

// TestCursorSnapshotRoundTrip compacts a registry holding cursors and
// reopens from the v2 snapshot; the cursors must survive without the
// WAL records that created them.
func TestCursorSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := nameservice.NewTopicRegistry()
	s, err := Open(dir, reg, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	reg.Observe(func(m nameservice.Mutation) {
		if rec, ok := recordOf(m); ok {
			s.Journal(&rec)
		}
	})
	if err := reg.Declare("orders", 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.AckCursor("orders", "node5/billing", 1234); err != nil {
		t.Fatal(err)
	}
	if err := reg.AckCursor("orders", "node6/audit", 88); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(reg); err != nil {
		t.Fatal(err)
	}
	s.Close()

	reg2 := nameservice.NewTopicRegistry()
	s2, err := Open(dir, reg2, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen from v2 snapshot: %v", err)
	}
	defer s2.Close()
	if cur, ok := reg2.CursorOf("orders", "node5/billing"); !ok || cur != 1234 {
		t.Fatalf("billing cursor = %d (ok=%v), want 1234", cur, ok)
	}
	if cur, ok := reg2.CursorOf("orders", "node6/audit"); !ok || cur != 88 {
		t.Fatalf("audit cursor = %d (ok=%v), want 88", cur, ok)
	}
}

// TestV1SnapshotAccepted reopens from a version-1 snapshot file (no
// cursor sections) — what a pre-upgrade compaction left on disk.
func TestV1SnapshotAccepted(t *testing.T) {
	dir := t.TempDir()
	reg := nameservice.NewTopicRegistry()
	s, err := Open(dir, reg, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Declare("alpha", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(reg); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Rewrite the snapshot as v1: strip each topic's cursor section
	// (here empty, so just the 4-byte count), downgrade the version
	// byte, and re-checksum.
	path := filepath.Join(dir, snapName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := b[:len(b)-4]
	// One topic, zero subs, zero cursors: the cursor count is the last
	// 4 bytes of the body.
	body = body[:len(body)-4]
	body[4] = snapVersionV1
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], wire.Checksum(body))
	if err := os.WriteFile(path, append(body, crc[:]...), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := nameservice.NewTopicRegistry()
	s2, err := Open(dir, reg2, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen from v1 snapshot: %v", err)
	}
	defer s2.Close()
	if _, ok := reg2.Snapshot("alpha"); !ok {
		t.Fatal("alpha lost reading v1 snapshot")
	}
}
