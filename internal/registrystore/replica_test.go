package registrystore

import (
	"testing"
	"time"

	"flipc/internal/core"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/topic"
	"flipc/internal/wire"
)

func newDomain(t *testing.T, fabric *interconnect.Fabric, node wire.NodeID) *core.Domain {
	t.Helper()
	tr, err := fabric.Attach(node)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDomain(core.Config{Node: node, MessageSize: 256, NumBuffers: 512}, tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	d.Start()
	return d
}

func TestApplyGapForcesResync(t *testing.T) {
	reg := nameservice.NewTopicRegistry()
	a := NewApply(nil, reg, nil)

	sub1, err := wire.MakeAddr(1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	framed := func(r Record) []byte {
		b, err := AppendRecord(nil, &r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	feed := func(b []byte) {
		a.mu.Lock()
		a.feedLocked(b)
		a.mu.Unlock()
	}

	// In-sequence from genesis: applies.
	feed(framed(Record{Type: RecDeclare, Seq: 1, Topic: "t", Class: 1}))
	feed(framed(Record{Type: RecSubscribe, Seq: 2, Topic: "t", Addr: sub1}))
	if a.NeedResync() || a.Applied() != 2 {
		t.Fatalf("in-sequence stream: gap=%v applied=%d", a.NeedResync(), a.Applied())
	}
	// Sequence jump (a dropped stream message): gap, and no further
	// records apply until resync.
	feed(framed(Record{Type: RecAdvance, Seq: 5}))
	if !a.NeedResync() {
		t.Fatal("sequence gap not detected")
	}
	epochBefore := reg.Epoch()
	feed(framed(Record{Type: RecAdvance, Seq: 6}))
	if reg.Epoch() != epochBefore {
		t.Fatal("gapped replica kept applying")
	}
	// Resync clears the gap and resumes at the snapshot's sequence.
	src := nameservice.NewTopicRegistry()
	if err := src.Subscribe("t", sub1); err != nil {
		t.Fatal(err)
	}
	if err := a.Resync(src.ExportState(), 6); err != nil {
		t.Fatal(err)
	}
	if a.NeedResync() || a.LastSeq() != 6 {
		t.Fatalf("after resync: gap=%v lastSeq=%d", a.NeedResync(), a.LastSeq())
	}
	feed(framed(Record{Type: RecAdvance, Seq: 7}))
	if a.NeedResync() || reg.Epoch() == epochBefore {
		t.Fatal("post-resync record did not apply")
	}

	// A heartbeat whose sequence is ahead of ours is also a gap.
	feed(framed(Record{Type: RecHeartbeat, Seq: 9, Gen: 3}))
	if !a.NeedResync() {
		t.Fatal("heartbeat ahead of replica not detected as gap")
	}
	if a.PrimaryGen() != 3 {
		t.Fatalf("heartbeat generation not tracked: %d", a.PrimaryGen())
	}
}

// TestHeartbeatCarriesEnqueuedSeq pins the heartbeat's sequence to the
// feed's enqueue order: a mutation that has journaled sequence N but
// not yet enqueued record N (the store cursor runs ahead of the feed
// between Journal and Enqueue) must not be claimed by a heartbeat that
// reaches the standby first, or the standby reads N as a gap and
// resyncs spuriously.
func TestHeartbeatCarriesEnqueuedSeq(t *testing.T) {
	sub1, err := wire.MakeAddr(1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFeed(nil, 512)
	rec := Record{Type: RecSubscribe, Seq: 5, Topic: "t", Addr: sub1}
	framed, err := AppendRecord(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	f.Enqueue(rec.Seq, framed)

	// Journal has already assigned sequence 6 elsewhere, but record 6 is
	// not enqueued yet: the heartbeat must carry 5, the feed's cursor.
	f.Heartbeat(3)
	f.mu.Lock()
	hbFramed := f.queue[len(f.queue)-1]
	f.mu.Unlock()
	hb, _, err := DecodeRecord(hbFramed)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Type != RecHeartbeat || hb.Seq != 5 || hb.Gen != 3 {
		t.Fatalf("heartbeat = %+v, want type heartbeat seq 5 gen 3", hb)
	}

	// A standby that has applied through 5 reads the heartbeat as
	// confirmation, not as a gap.
	a := NewApply(nil, nameservice.NewTopicRegistry(), nil)
	a.mu.Lock()
	a.lastSeq = 4
	a.feedLocked(framed)
	a.feedLocked(hbFramed)
	a.mu.Unlock()
	if a.NeedResync() {
		t.Fatal("in-order heartbeat read as a sequence gap")
	}
}

// TestRegistryFailoverSoak is the failover soak: a primary registry
// replicates to a standby over the reserved control-priority topic
// while a publisher fans traffic out to subscribers; the primary is
// killed mid-traffic, the standby fences itself strictly above and
// takes over, and the test asserts zero subscriptions were lost, no
// publisher ever blocked (sends stay error-free and accounted), and
// fanout conservation holds across the failover.
func TestRegistryFailoverSoak(t *testing.T) {
	fabric := interconnect.NewFabric(4096)
	primD := newDomain(t, fabric, 0)
	stbyD := newDomain(t, fabric, 1)
	workD := newDomain(t, fabric, 2)

	// Primary registry with a durable store.
	regA := nameservice.NewTopicRegistry()
	stA, err := Open(t.TempDir(), regA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	mgrA := NewManager(regA, stA)
	dirA := topic.LocalDirectory{R: regA}

	// Replication stream: publisher on the primary, subscriber on the
	// standby, both through the primary's own registry (dogfooding).
	repPub, err := topic.NewPublisher(primD, dirA, topic.PublisherConfig{
		Topic: ReplicationTopic, Class: ReplicationClass, RefreshEvery: 1, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	feed := NewFeed(repPub, primD.MaxPayload())
	mgrA.AttachFeed(feed)
	genA := mgrA.Promote()

	regB := nameservice.NewTopicRegistry()
	stB, err := Open(t.TempDir(), regB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	repSub, err := topic.NewSubscriber(stbyD, dirA, ReplicationTopic, ReplicationClass, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	apply := NewApply(repSub, regB, stB)
	// Bootstrap: full-state resync at the primary's pre-export sequence.
	seq := stA.Seq()
	if err := apply.Resync(regA.ExportState(), seq); err != nil {
		t.Fatal(err)
	}

	// Workload: subscribers and a publisher on "data", resolving through
	// a failover directory so the registry can be retargeted live.
	fdir := topic.NewFailoverDirectory(dirA)
	var subs []*topic.Subscriber
	for i := 0; i < 3; i++ {
		s, err := topic.NewSubscriber(workD, fdir, "data", topic.Normal, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	pub, err := topic.NewPublisher(workD, fdir, topic.PublisherConfig{
		Topic: "data", Class: topic.Normal, RefreshEvery: 8, Window: 256})
	if err != nil {
		t.Fatal(err)
	}

	pump := func() {
		if _, err := feed.Pump(); err != nil {
			t.Fatalf("feed pump: %v", err)
		}
		for apply.Drain() > 0 {
		}
		if apply.NeedResync() {
			seq := stA.Seq()
			if err := apply.Resync(regA.ExportState(), seq); err != nil {
				t.Fatal(err)
			}
		}
	}

	const phase = 1500
	published := 0
	publish := func(n int) {
		for i := 0; i < n; i++ {
			res, err := pub.Publish([]byte("tick"))
			if err != nil {
				t.Fatalf("publish %d: %v", published, err)
			}
			if res.Sent+res.Dropped != len(subs) {
				t.Fatalf("fanout accounted %d+%d, want %d", res.Sent, res.Dropped, len(subs))
			}
			published++
			for _, s := range subs {
				for {
					if _, _, ok := s.Receive(); !ok {
						break
					}
				}
			}
			if i%64 == 0 {
				mgrA.Heartbeat()
				pump()
			}
		}
	}
	publish(phase)
	pump()
	// Let the replication fanout settle before comparing states.
	deadline := time.Now().Add(5 * time.Second)
	for {
		pump()
		if !apply.NeedResync() && apply.LastSeq() >= stA.Seq() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: lastSeq=%d primary=%d", apply.LastSeq(), stA.Seq())
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the primary mid-traffic and fail over.
	before := regA.ExportState()
	regA.Observe(nil) // primary stops serving
	peerGen := apply.PrimaryGen()
	mgrB := NewManager(regB, stB)
	mgrB.ObservePeer(peerGen)
	genB := mgrB.Promote()
	if genB <= genA {
		t.Fatalf("standby fenced at %d, not above primary %d", genB, genA)
	}
	fdir.Retarget(topic.LocalDirectory{R: regB})
	if fdir.Epoch() != 1 {
		t.Fatalf("retarget epoch = %d", fdir.Epoch())
	}

	// Zero subscriptions lost: every (topic, subscriber) the primary
	// served must be present at the new primary.
	after := regB.ExportState()
	got := make(map[string]map[wire.Addr]bool)
	for _, ts := range after.Topics {
		set := make(map[wire.Addr]bool)
		for _, s := range ts.Subs {
			set[s.Addr] = true
		}
		got[ts.Name] = set
	}
	for _, ts := range before.Topics {
		for _, s := range ts.Subs {
			if !got[ts.Name][s.Addr] {
				t.Fatalf("failover lost subscription %v to %q", s.Addr, ts.Name)
			}
		}
	}
	// And every topic generation moved strictly above what was served.
	for _, ts := range before.Topics {
		if g := regB.Gen(ts.Name); g <= ts.Gen {
			t.Fatalf("topic %q gen %d not above served %d", ts.Name, g, ts.Gen)
		}
	}

	// Traffic continues against the new primary: the fence makes every
	// cached plan stale, so the publisher rebuilds and keeps fanning out
	// to the full subscriber set; renewals land at the new registry.
	if err := pub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if pub.Subscribers() != len(subs) {
		t.Fatalf("post-failover plan has %d subscribers, want %d", pub.Subscribers(), len(subs))
	}
	for _, s := range subs {
		if err := s.Renew(); err != nil {
			t.Fatal(err)
		}
	}
	publish(phase)

	// Conservation across the whole run: every per-subscriber frame was
	// delivered or counted at exactly one ledger.
	deadline = time.Now().Add(5 * time.Second)
	for {
		var delivered, recvDrops uint64
		for _, s := range subs {
			for {
				if _, _, ok := s.Receive(); !ok {
					break
				}
			}
			delivered += s.Received()
			recvDrops += s.Drops()
		}
		if delivered+recvDrops+pub.Dropped() == uint64(published*len(subs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation: %d delivered + %d recv drops + %d pub drops != %d",
				delivered, recvDrops, pub.Dropped(), published*len(subs))
		}
		time.Sleep(time.Millisecond)
	}
	if h := mgrB.Health(); h.Role != "primary" || h.RegistryGen != genB {
		t.Fatalf("new primary health = %+v", h)
	}
}
