package registrystore

import (
	"errors"
	"testing"

	"flipc/internal/recio"
	"flipc/internal/wire"
)

// FuzzDecodeRecord drives the WAL/replication record parser with
// arbitrary bytes. Invariants:
//
//   - DecodeRecord never panics;
//   - every failure is ErrShort (structurally incomplete — the torn-
//     tail class a log reader truncates at) or ErrCorrupt (everything
//     else), never a third kind;
//   - anything that decodes re-encodes to the identical bytes — the
//     format is canonical, so log bytes, replicated bytes, and
//     re-journaled bytes can never disagree;
//   - consumed byte counts stay within the input, so a stream reader
//     can never over-advance.
func FuzzDecodeRecord(f *testing.F) {
	a, err := wire.MakeAddr(3, 7, 1)
	if err != nil {
		f.Fatal(err)
	}
	seed := func(r Record) []byte {
		b, err := AppendRecord(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(Record{Type: RecDeclare, Seq: 1, Topic: "alpha", Class: 2}))
	f.Add(seed(Record{Type: RecSubscribe, Seq: 2, Topic: "alpha", Addr: a}))
	f.Add(seed(Record{Type: RecRenew, Seq: 3, Topic: "alpha", Addr: a}))
	f.Add(seed(Record{Type: RecUnsubscribe, Seq: 4, Topic: "alpha", Addr: a}))
	f.Add(seed(Record{Type: RecAdvance, Seq: 5}))
	f.Add(seed(Record{Type: RecFence, Seq: 6, Gen: 42}))
	f.Add(seed(Record{Type: RecHeartbeat, Seq: 7, Gen: 43}))
	// v1 frames (what Journal stamps now) and the cursor-ack body.
	f.Add(seed(Record{Type: RecDeclare, Seq: 10, Topic: "alpha", Class: 2, Ver: recio.V1}))
	f.Add(seed(Record{Type: RecSubscribe, Seq: 11, Topic: "alpha", Addr: a, Ver: recio.V1}))
	f.Add(seed(Record{Type: RecCursorAck, Seq: 12, Topic: "alpha", Sub: "node3/analytics", Ack: 999}))
	f.Add(seed(Record{Type: RecCursorAck, Seq: 13, Topic: "t", Sub: "s", Ack: 1, Ver: recio.V1}))
	// Two records back to back (stream framing).
	f.Add(append(seed(Record{Type: RecAdvance, Seq: 1}),
		seed(Record{Type: RecFence, Seq: 2, Gen: 1})...))
	// Torn tail.
	f.Add(seed(Record{Type: RecSubscribe, Seq: 8, Topic: "torn", Addr: a})[:20])
	// Corrupt checksum.
	f.Add(func() []byte {
		b := seed(Record{Type: RecDeclare, Seq: 9, Topic: "x", Class: 1})
		b[0] ^= 0xFF
		return b
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := AppendRecord(nil, &rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %+v: %v", rec, err)
		}
		if string(re) != string(data[:n]) {
			t.Fatalf("record is not canonical:\n in  %x\n out %x", data[:n], re)
		}
	})
}
