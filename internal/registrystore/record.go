// Package registrystore makes the nameservice topic registry durable
// and replicated: a write-ahead record log plus periodic compacted
// snapshots on the registry node, and a mutation stream to a standby
// replica carried over a reserved control-priority FLIPC topic.
//
// The durability contract is generation fencing: a registry that
// restarts (or a standby that takes over) resumes at a registry
// generation strictly above any the previous incarnation ever served,
// and bumps every topic's membership generation, so every publisher
// plan and every client view built against the old incarnation reads
// as stale and refreshes — without a cluster-wide re-join storm,
// because the recovered subscriber sets answer paged-snapshot requests
// immediately.
//
// Replay is exact: the registry's mutation observer emits each
// acknowledged state change before the mutating call returns (write-
// ahead, under the registry lock), and applying the same records in
// the same order to an empty registry reconstructs the same topics,
// subscriber sets, lease epochs, and generations. Lease expiry is not
// journaled — it is a deterministic function of the journaled Advance
// and renewal records.
package registrystore

import (
	"encoding/binary"
	"fmt"

	"flipc/internal/nameservice"
	"flipc/internal/recio"
	"flipc/internal/wire"
)

// RecType identifies one record kind in the log and replication stream.
type RecType uint8

// Record types. Declare/Subscribe/Renew/Unsubscribe/Advance mirror the
// registry's mutation operations; Fence and Heartbeat are the store's
// own: a Fence persists the registry generation an incarnation serves
// at, a Heartbeat (replication stream only, never logged) carries the
// primary's generation and sequence so a silent standby can detect both
// primary death and its own stream gaps.
const (
	RecDeclare RecType = iota + 1
	RecSubscribe
	RecRenew
	RecUnsubscribe
	RecAdvance
	RecFence
	RecHeartbeat
	// RecCursorAck persists a durable-stream replay cursor advance
	// (subscriber Sub acknowledged through Ack on Topic). Unsynced like
	// renewals: an ack lost to a crash is re-merged from the next in-band
	// acknowledgement, and cursors only ever move forward.
	RecCursorAck

	recTypeSentinel
)

// String names the record type for traces and errors.
func (t RecType) String() string {
	switch t {
	case RecDeclare:
		return "declare"
	case RecSubscribe:
		return "subscribe"
	case RecRenew:
		return "renew"
	case RecUnsubscribe:
		return "unsubscribe"
	case RecAdvance:
		return "advance"
	case RecFence:
		return "fence"
	case RecHeartbeat:
		return "heartbeat"
	case RecCursorAck:
		return "cursor-ack"
	}
	return fmt.Sprintf("rectype(%d)", uint8(t))
}

// Record is one registry mutation (or store control event) in its
// durable form. Seq is the registry-wide mutation sequence number,
// assigned by the primary's store; gaps in Seq on the standby mean the
// replication stream lost records (the optimistic transport may drop)
// and the replica must resync from a full state snapshot.
type Record struct {
	Type  RecType
	Seq   uint64
	Topic string
	Addr  wire.Addr
	Class uint8
	// Gen is the registry generation carried by Fence and Heartbeat
	// records.
	Gen uint64
	// Sub and Ack carry RecCursorAck's subscriber name and acknowledged
	// durable sequence.
	Sub string
	Ack uint64
	// Ver is the frame format version (recio.V0 or recio.V1), preserved
	// across decode so re-encoding a decoded record is byte-exact.
	// Journal stamps newly written records recio.V1.
	Ver uint8
}

// Record framing is internal/recio's CRC-framed layout (the codec is
// shared with internal/duralog); this package owns only the bodies:
// declare = class(1) | topic; subscribe/renew/unsubscribe = addr(4) |
// topic; advance = empty; fence/heartbeat = generation(8); cursor-ack =
// ackSeq(8) | subLen(1) | sub | topic.
const (
	// MaxTopicLen bounds topic names in records (matches the remote
	// protocol's name limit).
	MaxTopicLen = 200
)

// ErrCorrupt and ErrShort are recio's parse-failure classes: ErrShort
// is a structurally incomplete prefix (a torn tail, truncated at
// recovery); ErrCorrupt is everything else — bad checksum, unknown
// type or version, malformed body. A log reader stops at the first
// corrupt record; a replica treats it as a stream gap.
var (
	ErrCorrupt = recio.ErrCorrupt
	ErrShort   = recio.ErrShort
)

// body builds the record's type-specific body.
func (r *Record) body() ([]byte, error) {
	switch r.Type {
	case RecDeclare:
		if len(r.Topic) == 0 || len(r.Topic) > MaxTopicLen {
			return nil, fmt.Errorf("registrystore: bad topic length %d", len(r.Topic))
		}
		b := make([]byte, 1+len(r.Topic))
		b[0] = r.Class
		copy(b[1:], r.Topic)
		return b, nil
	case RecSubscribe, RecRenew, RecUnsubscribe:
		if len(r.Topic) == 0 || len(r.Topic) > MaxTopicLen {
			return nil, fmt.Errorf("registrystore: bad topic length %d", len(r.Topic))
		}
		if !r.Addr.Valid() {
			return nil, fmt.Errorf("registrystore: %v record with invalid address", r.Type)
		}
		b := make([]byte, 4+len(r.Topic))
		binary.BigEndian.PutUint32(b[0:4], uint32(r.Addr))
		copy(b[4:], r.Topic)
		return b, nil
	case RecAdvance:
		return nil, nil
	case RecFence, RecHeartbeat:
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, r.Gen)
		return b, nil
	case RecCursorAck:
		if len(r.Topic) == 0 || len(r.Topic) > MaxTopicLen {
			return nil, fmt.Errorf("registrystore: bad topic length %d", len(r.Topic))
		}
		if len(r.Sub) == 0 || len(r.Sub) > 255 {
			return nil, fmt.Errorf("registrystore: bad cursor subscriber length %d", len(r.Sub))
		}
		b := make([]byte, 9+len(r.Sub)+len(r.Topic))
		binary.BigEndian.PutUint64(b[0:8], r.Ack)
		b[8] = byte(len(r.Sub))
		copy(b[9:], r.Sub)
		copy(b[9+len(r.Sub):], r.Topic)
		return b, nil
	}
	return nil, fmt.Errorf("registrystore: cannot encode record type %v", r.Type)
}

// AppendRecord encodes r and appends it to dst, returning the extended
// slice. The same encoding frames WAL entries and replication messages.
func AppendRecord(dst []byte, r *Record) ([]byte, error) {
	body, err := r.body()
	if err != nil {
		return dst, err
	}
	return recio.Append(dst, &recio.Frame{Type: uint8(r.Type), Ver: r.Ver, Seq: r.Seq, Payload: body})
}

// DecodeRecord parses one record from the front of b, returning the
// record and the bytes consumed. ErrShort means b ends before the
// record does (torn tail); ErrCorrupt wraps every other failure. Both
// frame versions are accepted, so a log or replication stream written
// by an old node replays on a new one mid-upgrade.
func DecodeRecord(b []byte) (Record, int, error) {
	f, size, err := recio.Decode(b)
	if err != nil {
		return Record{}, 0, err
	}
	r := Record{
		Type: RecType(f.Type),
		Seq:  f.Seq,
		Ver:  f.Ver,
	}
	body := f.Payload
	switch r.Type {
	case RecDeclare:
		if len(body) < 2 || len(body) > 1+MaxTopicLen {
			return Record{}, 0, fmt.Errorf("%w: declare body %d bytes", ErrCorrupt, len(body))
		}
		r.Class = body[0]
		r.Topic = string(body[1:])
	case RecSubscribe, RecRenew, RecUnsubscribe:
		if len(body) < 5 || len(body) > 4+MaxTopicLen {
			return Record{}, 0, fmt.Errorf("%w: %v body %d bytes", ErrCorrupt, r.Type, len(body))
		}
		r.Addr = wire.Addr(binary.BigEndian.Uint32(body[0:4]))
		if !r.Addr.Valid() {
			return Record{}, 0, fmt.Errorf("%w: %v with invalid address", ErrCorrupt, r.Type)
		}
		r.Topic = string(body[4:])
	case RecAdvance:
		if len(body) != 0 {
			return Record{}, 0, fmt.Errorf("%w: advance body %d bytes", ErrCorrupt, len(body))
		}
	case RecFence, RecHeartbeat:
		if len(body) != 8 {
			return Record{}, 0, fmt.Errorf("%w: %v body %d bytes", ErrCorrupt, r.Type, len(body))
		}
		r.Gen = binary.BigEndian.Uint64(body)
	case RecCursorAck:
		if len(body) < 11 {
			return Record{}, 0, fmt.Errorf("%w: cursor-ack body %d bytes", ErrCorrupt, len(body))
		}
		subLen := int(body[8])
		if subLen == 0 || 9+subLen >= len(body) || len(body)-9-subLen > MaxTopicLen {
			return Record{}, 0, fmt.Errorf("%w: cursor-ack body layout", ErrCorrupt)
		}
		r.Ack = binary.BigEndian.Uint64(body[0:8])
		r.Sub = string(body[9 : 9+subLen])
		r.Topic = string(body[9+subLen:])
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown type %d", ErrCorrupt, f.Type)
	}
	return r, size, nil
}

// recordOf translates a registry mutation into its durable record form
// (Seq is assigned by the store).
func recordOf(m nameservice.Mutation) (Record, bool) {
	switch m.Op {
	case nameservice.MutDeclare:
		return Record{Type: RecDeclare, Topic: m.Topic, Class: m.Class}, true
	case nameservice.MutSubscribe:
		return Record{Type: RecSubscribe, Topic: m.Topic, Addr: m.Addr}, true
	case nameservice.MutRenew:
		return Record{Type: RecRenew, Topic: m.Topic, Addr: m.Addr}, true
	case nameservice.MutUnsubscribe:
		return Record{Type: RecUnsubscribe, Topic: m.Topic, Addr: m.Addr}, true
	case nameservice.MutAdvance:
		return Record{Type: RecAdvance}, true
	case nameservice.MutCursor:
		return Record{Type: RecCursorAck, Topic: m.Topic, Sub: m.Sub, Ack: m.Ack}, true
	}
	return Record{}, false
}

// applyRecord replays one record onto reg. The caller must have
// detached any observer first (replay must not re-journal).
//
// A fence record replays as the incarnation boundary it marked: it
// installs the fenced registry generation and bumps every topic's
// membership generation, exactly as the incarnation that wrote it did
// before serving. Because the bump is in the log, replay reconstructs
// per-topic generations exactly across any number of crash/restart
// cycles, and a fresh incarnation's post-recovery bump is always
// strictly above every generation any predecessor served.
func applyRecord(reg *nameservice.TopicRegistry, r *Record) error {
	switch r.Type {
	case RecDeclare:
		return reg.Declare(r.Topic, r.Class)
	case RecSubscribe, RecRenew:
		return reg.Subscribe(r.Topic, r.Addr)
	case RecUnsubscribe:
		reg.Unsubscribe(r.Topic, r.Addr)
		return nil
	case RecAdvance:
		reg.Advance()
		return nil
	case RecFence:
		reg.SetRegistryGen(r.Gen)
		reg.BumpTopicGens()
		return nil
	case RecHeartbeat:
		return nil
	case RecCursorAck:
		return reg.AckCursor(r.Topic, r.Sub, r.Ack)
	}
	return fmt.Errorf("registrystore: cannot apply record type %v", r.Type)
}
