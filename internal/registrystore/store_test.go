package registrystore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flipc/internal/nameservice"
	"flipc/internal/wire"
)

func addr(t *testing.T, node wire.NodeID, index uint16) wire.Addr {
	t.Helper()
	a, err := wire.MakeAddr(node, index, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRecordRoundTrip(t *testing.T) {
	a, err := wire.MakeAddr(3, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Type: RecDeclare, Seq: 1, Topic: "alpha", Class: 2},
		{Type: RecSubscribe, Seq: 2, Topic: "alpha", Addr: a},
		{Type: RecRenew, Seq: 3, Topic: "alpha", Addr: a},
		{Type: RecUnsubscribe, Seq: 4, Topic: "alpha", Addr: a},
		{Type: RecAdvance, Seq: 5},
		{Type: RecFence, Seq: 6, Gen: 42},
		{Type: RecHeartbeat, Seq: 7, Gen: 43},
	}
	var buf []byte
	for i := range recs {
		buf, err = AppendRecord(buf, &recs[i])
		if err != nil {
			t.Fatalf("append %v: %v", recs[i].Type, err)
		}
	}
	off := 0
	for i := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got, recs[i])
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	buf, err := AppendRecord(nil, &Record{Type: RecDeclare, Seq: 1, Topic: "x", Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte anywhere after the checksum field: must never decode.
	// A corrupted length field may read as a short record instead (it is
	// indistinguishable from a torn tail, and both stop the reader).
	for i := 4; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xFF
		_, _, err := DecodeRecord(mut)
		if i < 6 {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrShort) {
				t.Fatalf("length flip at %d: err = %v", i, err)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Any strict prefix must read short, never corrupt.
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeRecord(buf[:n]); !errors.Is(err, ErrShort) {
			t.Fatalf("prefix %d: err = %v, want ErrShort", n, err)
		}
	}
}

// journalVia opens a store in dir, promotes it, runs mutate against the
// registry, and returns the registry (still open: crash = just not
// closing cleanly, since Open never depends on a clean shutdown).
func journalVia(t *testing.T, dir string, mutate func(*nameservice.TopicRegistry)) (*nameservice.TopicRegistry, *Store, *Manager) {
	t.Helper()
	reg := nameservice.NewTopicRegistry()
	st, err := Open(dir, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	mgr := NewManager(reg, st)
	mgr.Promote()
	if mutate != nil {
		mutate(reg)
	}
	return reg, st, mgr
}

func TestRecoveryReplaysExactState(t *testing.T) {
	dir := t.TempDir()
	a1, a2 := addr(t, 1, 4), addr(t, 2, 9)
	reg, _, _ := journalVia(t, dir, func(r *nameservice.TopicRegistry) {
		if err := r.Declare("bulk", 0); err != nil {
			t.Fatal(err)
		}
		if err := r.Subscribe("bulk", a1); err != nil {
			t.Fatal(err)
		}
		if err := r.Subscribe("bulk", a2); err != nil {
			t.Fatal(err)
		}
		r.Advance()
		if err := r.Subscribe("bulk", a1); err != nil { // renewal
			t.Fatal(err)
		}
		r.Unsubscribe("bulk", a2)
		if err := r.Declare("ctl", 2); err != nil {
			t.Fatal(err)
		}
	})
	want := reg.ExportState()

	reg2 := nameservice.NewTopicRegistry()
	st2, err := Open(dir, reg2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := reg2.ExportState()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestRecoveryGenerationsStrictlyAbove(t *testing.T) {
	dir := t.TempDir()
	a1 := addr(t, 1, 4)

	// Incarnation 1 serves some generations, then "crashes" (no Close).
	reg, _, _ := journalVia(t, dir, func(r *nameservice.TopicRegistry) {
		if err := r.Subscribe("t", a1); err != nil {
			t.Fatal(err)
		}
	})
	servedReg := reg.RegistryGen()
	servedTopic := reg.Gen("t")
	if servedReg == 0 {
		t.Fatal("incarnation 1 has no registry generation")
	}

	// Incarnation 2: recovery + promotion must fence strictly above.
	reg2 := nameservice.NewTopicRegistry()
	st2, err := Open(dir, reg2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mgr2 := NewManager(reg2, st2)
	gen2 := mgr2.Promote()
	if gen2 <= servedReg {
		t.Fatalf("incarnation 2 reggen %d not above served %d", gen2, servedReg)
	}
	if g := reg2.Gen("t"); g <= servedTopic {
		t.Fatalf("topic gen %d not above served %d", g, servedTopic)
	}

	// Subscribers recovered with a fresh lease: present immediately, and
	// they survive a full TTL of sweeps without renewing.
	snap, ok := reg2.Snapshot("t")
	if !ok || len(snap.Subs) != 1 || snap.Subs[0].Addr != a1 {
		t.Fatalf("recovered membership = %+v, ok=%v", snap.Subs, ok)
	}
	for i := 0; i < nameservice.DefaultTopicTTL; i++ {
		if n := reg2.Advance(); n != 0 {
			t.Fatalf("restamped lease expired after %d sweeps", i+1)
		}
	}
}

func TestWALTruncatedMidRecord(t *testing.T) {
	dir := t.TempDir()
	a1, a2 := addr(t, 1, 4), addr(t, 1, 5)
	reg, _, _ := journalVia(t, dir, func(r *nameservice.TopicRegistry) {
		if err := r.Subscribe("t", a1); err != nil {
			t.Fatal(err)
		}
		if err := r.Subscribe("t", a2); err != nil {
			t.Fatal(err)
		}
	})
	_ = reg

	// Tear the final record mid-write, as a crash during append would.
	wal := filepath.Join(dir, "wal.log")
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := nameservice.NewTopicRegistry()
	st2, err := Open(dir, reg2, Options{})
	if err != nil {
		t.Fatalf("recovery after torn tail: %v", err)
	}
	defer st2.Close()
	// The torn record (a2's subscribe) is gone; everything before survives.
	snap, ok := reg2.Snapshot("t")
	if !ok || len(snap.Subs) != 1 || snap.Subs[0].Addr != a1 {
		t.Fatalf("post-truncation membership = %+v, ok=%v", snap.Subs, ok)
	}
	// The file was truncated at the tear, so new appends start clean.
	mgr2 := NewManager(reg2, st2)
	mgr2.Promote()
	if err := reg2.Subscribe("t", a2); err != nil {
		t.Fatal(err)
	}
	reg3 := nameservice.NewTopicRegistry()
	st3, err := Open(dir, reg3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if snap, _ := reg3.Snapshot("t"); len(snap.Subs) != 2 {
		t.Fatalf("post-repair membership = %+v", snap.Subs)
	}
}

func TestCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	a1, a2 := addr(t, 1, 4), addr(t, 2, 9)
	reg, st, _ := journalVia(t, dir, func(r *nameservice.TopicRegistry) {
		if err := r.Subscribe("t", a1); err != nil {
			t.Fatal(err)
		}
	})
	if err := st.Compact(reg); err != nil {
		t.Fatal(err)
	}
	if lag := st.WALRecords(); lag != 0 {
		t.Fatalf("WAL lag after compact = %d", lag)
	}
	// Mutations after the compaction land in the fresh log.
	if err := reg.Subscribe("t", a2); err != nil {
		t.Fatal(err)
	}
	want := reg.ExportState()

	reg2 := nameservice.NewTopicRegistry()
	st2, err := Open(dir, reg2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := reg2.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot+log recovery diverged:\n got %+v\nwant %+v", got, want)
	}
	if st2.SnapshotSeq() == 0 {
		t.Fatal("recovered store lost the snapshot sequence")
	}
}

func TestCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	reg, st, _ := journalVia(t, dir, func(r *nameservice.TopicRegistry) {
		if err := r.Subscribe("t", addr(t, 1, 4)); err != nil {
			t.Fatal(err)
		}
	})
	if err := st.Compact(reg); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "snapshot.dat")
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nameservice.NewTopicRegistry(), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestResyncDiscardsDivergentLocalHistory(t *testing.T) {
	dir := t.TempDir()
	a1, a2 := addr(t, 1, 4), addr(t, 2, 9)
	// An ex-primary journals a history whose tail was never replicated:
	// its log head runs ahead of the point the new primary's snapshot
	// will cover.
	journalVia(t, dir, func(r *nameservice.TopicRegistry) {
		if err := r.Subscribe("t", a1); err != nil {
			t.Fatal(err)
		}
		if err := r.Subscribe("stale", a2); err != nil {
			t.Fatal(err)
		}
	})

	// It restarts as a standby and resyncs from the new primary, whose
	// state lacks the divergent tail and whose sequence is behind the
	// old log's head.
	reg := nameservice.NewTopicRegistry()
	st, err := Open(dir, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	src := nameservice.NewTopicRegistry()
	src.SetRegistryGen(9)
	if err := src.Subscribe("t", a1); err != nil {
		t.Fatal(err)
	}
	state := src.ExportState()
	resyncSeq := uint64(2)
	if head := st.Seq(); head <= resyncSeq {
		t.Fatalf("test setup: old log head %d not ahead of resync point %d", head, resyncSeq)
	}
	apply := NewApply(nil, reg, st)
	if err := apply.Resync(state, resyncSeq); err != nil {
		t.Fatal(err)
	}
	if st.Seq() != resyncSeq || st.WALRecords() != 0 {
		t.Fatalf("after resync: seq=%d walRecords=%d, want seq=%d and an empty log",
			st.Seq(), st.WALRecords(), resyncSeq)
	}

	// A restart must recover exactly the resynced state: none of the
	// divergent records — even those whose sequence numbers exceed the
	// resync point — may replay on top of the snapshot.
	reg2 := nameservice.NewTopicRegistry()
	st2, err := Open(dir, reg2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := reg2.ExportState(); !reflect.DeepEqual(got, state) {
		t.Fatalf("restart after resync diverged:\n got %+v\nwant %+v", got, state)
	}
	if _, ok := reg2.Snapshot("stale"); ok {
		t.Fatal("divergent old-history topic resurrected after restart")
	}
	if st2.Seq() != resyncSeq {
		t.Fatalf("restarted store seq = %d, want %d", st2.Seq(), resyncSeq)
	}
}

func TestStoreErrorDemotesPrimary(t *testing.T) {
	dir := t.TempDir()
	reg, st, mgr := journalVia(t, dir, func(r *nameservice.TopicRegistry) {
		if err := r.Subscribe("t", addr(t, 1, 4)); err != nil {
			t.Fatal(err)
		}
	})
	// Break the log out from under the store: every further journal
	// write fails stickily.
	st.mu.Lock()
	st.wal.Close()
	st.mu.Unlock()

	// The next mutation cannot be made durable: the manager must demote
	// itself rather than keep acknowledging non-durable, non-replicated
	// mutations as primary.
	if err := reg.Subscribe("t", addr(t, 2, 9)); err != nil {
		t.Fatal(err)
	}
	if mgr.Role() != RoleStandby {
		t.Fatalf("role after store failure = %v, want standby", mgr.Role())
	}
	h := mgr.Health()
	if h.Demotions != 1 || h.StoreErr == "" {
		t.Fatalf("health after store failure = %+v, want one demotion and a store error", h)
	}
}

func TestDoubleFailoverFencing(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()

	// A is the original primary.
	regA := nameservice.NewTopicRegistry()
	stA, err := Open(dirA, regA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgrA := NewManager(regA, stA)
	genA := mgrA.Promote()
	if err := regA.Subscribe("t", addr(t, 1, 4)); err != nil {
		t.Fatal(err)
	}
	stA.Close() // A "dies"

	// B takes over, having observed A's generation via replication.
	regB := nameservice.NewTopicRegistry()
	stB, err := Open(dirB, regB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	mgrB := NewManager(regB, stB)
	mgrB.ObservePeer(genA)
	genB := mgrB.Promote()
	if genB <= genA {
		t.Fatalf("takeover gen %d not above primary gen %d", genB, genA)
	}

	// A returns, recovers its own history, and must observe B's fence:
	// it may not serve at or below genB.
	regA2 := nameservice.NewTopicRegistry()
	stA2, err := Open(dirA, regA2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stA2.Close()
	mgrA2 := NewManager(regA2, stA2)
	if demoted := mgrA2.ObservePeer(genB); demoted {
		t.Fatal("standby cannot be demoted")
	}
	if mgrA2.Role() != RoleStandby {
		t.Fatalf("returning primary role = %v before promotion", mgrA2.Role())
	}
	genA2 := mgrA2.Promote()
	if genA2 <= genB {
		t.Fatalf("returning primary fenced at %d, not above peer %d", genA2, genB)
	}

	// The symmetric race: if A had promoted first and then learned of
	// B's equal-or-higher fence, it must yield.
	mgrB.ObservePeer(genA2)
	if mgrB.Role() != RoleStandby {
		t.Fatal("old primary did not yield to a peer fence at or above its own")
	}
	if h := mgrB.Health(); h.Demotions != 1 || h.Role != "standby" {
		t.Fatalf("health after demotion = %+v", h)
	}
}

func TestEvictEndpointBumpsGenAndNotifies(t *testing.T) {
	dir := t.TempDir()
	a1, a2 := addr(t, 1, 4), addr(t, 2, 4)
	reg, _, _ := journalVia(t, dir, func(r *nameservice.TopicRegistry) {
		for _, tp := range []string{"x", "y"} {
			if err := r.Subscribe(tp, a1); err != nil {
				t.Fatal(err)
			}
			if err := r.Subscribe(tp, a2); err != nil {
				t.Fatal(err)
			}
		}
	})
	genX := reg.Gen("x")
	if n := reg.EvictEndpoint(1, 4); n != 2 {
		t.Fatalf("evicted %d subscriptions, want 2", n)
	}
	if reg.Gen("x") <= genX {
		t.Fatal("eviction did not bump the topic generation")
	}
	// Evictions journal as unsubscribes: recovery must not resurrect.
	reg2 := nameservice.NewTopicRegistry()
	st2, err := Open(dir, reg2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, tp := range []string{"x", "y"} {
		snap, _ := reg2.Snapshot(tp)
		if len(snap.Subs) != 1 || snap.Subs[0].Addr != a2 {
			t.Fatalf("topic %s recovered membership = %+v", tp, snap.Subs)
		}
	}
}
