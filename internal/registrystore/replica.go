package registrystore

import (
	"fmt"
	"sync"

	"flipc/internal/nameservice"
	"flipc/internal/topic"
)

// ReplicationTopic is the reserved control-priority topic the primary
// streams registry mutation records over. The "!" prefix keeps it out
// of any application namespace; the standby subscribes to it through
// the primary's own registry, so the stream dogfoods the full topic
// stack (priority classes, fanout accounting, optimistic loss).
const ReplicationTopic = "!registry"

// ShardReplicationTopic is the reserved replication stream of one
// registry shard in a sharded deployment: "!registry/<shard>". Each
// shard streams over its own topic so one shard's failover (standby
// resubscribes, feed re-targets) never touches another shard's stream
// state. shardmap.Map.ShardOf routes these names to their own shard by
// construction.
func ShardReplicationTopic(shard uint32) string {
	return fmt.Sprintf("%s/%d", ReplicationTopic, shard)
}

// ReplicationClass is the stream's priority class: registry mutations
// are small and latency-critical, exactly what Control is for.
const ReplicationClass = topic.Control

// Feed is the primary's side of the replication stream: journaled
// records are enqueued (cheap, called under the registry lock by the
// manager's observer) and a periodic Pump — run outside any lock, on
// the housekeeping cadence — coalesces them into control-class fanout
// messages. Publishing is optimistic: a dropped batch is not retried,
// because the standby detects the sequence gap and resyncs from a full
// state snapshot; that keeps the primary's mutation path free of any
// replication backpressure.
type Feed struct {
	mu       sync.Mutex
	pub      *topic.Publisher
	queue    [][]byte
	maxBatch int
	lastSeq  uint64 // highest record sequence enqueued so far

	enqueued uint64
	batches  uint64
	dropped  uint64 // fanout drops reported by the publisher
	oversize uint64 // records too large for any batch (forces a resync)
}

// NewFeed wraps pub. maxBatch bounds one stream message's payload and
// must not exceed the domain's payload capacity (default 512).
func NewFeed(pub *topic.Publisher, maxBatch int) *Feed {
	if maxBatch <= 0 {
		maxBatch = 512
	}
	return &Feed{pub: pub, maxBatch: maxBatch}
}

// Enqueue queues one framed record (carrying sequence number seq) for
// the next Pump. Safe to call from the registry's mutation observer: it
// takes only the feed's own lock.
func (f *Feed) Enqueue(seq uint64, framed []byte) {
	f.mu.Lock()
	f.queue = append(f.queue, framed)
	f.enqueued++
	if seq > f.lastSeq {
		f.lastSeq = seq
	}
	f.mu.Unlock()
}

// Heartbeat queues a heartbeat carrying the primary's registry
// generation and the sequence number of the last record enqueued ahead
// of it, letting a silent standby detect both primary liveness and its
// own stream gaps. The sequence is the feed's own cursor, not the
// store's: a mutation that has journaled sequence N but not yet
// enqueued record N must not be claimed by a heartbeat that will reach
// the standby first (the standby would read N as a gap and resync
// spuriously), so the heartbeat is built and queued under the same
// lock that orders record enqueues.
func (f *Feed) Heartbeat(gen uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	framed, err := AppendRecord(nil, &Record{Type: RecHeartbeat, Seq: f.lastSeq, Gen: gen})
	if err != nil {
		return
	}
	f.queue = append(f.queue, framed)
	f.enqueued++
}

// Pump drains the queue, coalescing records into batches of at most
// maxBatch bytes (records are self-framing, so concatenation is the
// batch format), and publishes each batch. It must run on the
// publisher's single thread (the housekeeping loop). Returns the
// number of records published.
func (f *Feed) Pump() (int, error) {
	f.mu.Lock()
	q := f.queue
	f.queue = nil
	f.mu.Unlock()
	if len(q) == 0 {
		return 0, nil
	}
	published := 0
	var batch []byte
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		res, err := f.pub.Publish(batch)
		batch = batch[:0]
		f.mu.Lock()
		f.batches++
		f.dropped += uint64(res.Dropped)
		f.mu.Unlock()
		return err
	}
	for _, rec := range q {
		if len(rec) > f.maxBatch {
			f.mu.Lock()
			f.oversize++
			f.mu.Unlock()
			continue // the standby's gap detection will force a resync
		}
		if len(batch)+len(rec) > f.maxBatch {
			if err := flush(); err != nil {
				return published, err
			}
		}
		batch = append(batch, rec...)
		published++
	}
	return published, flush()
}

// Dropped returns the cumulative fanout drops the publisher reported —
// each one a future standby resync.
func (f *Feed) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped + f.oversize
}

// Apply is the standby's side of the replication stream: it drains the
// subscriber, parses record batches, and applies them to the standby's
// registry copy in sequence order, journaling each applied record to
// the standby's own store so a standby restart recovers too.
//
// Sequence discipline: the first applied record must be lastSeq+1
// (lastSeq starts at 0, so a standby can follow a fresh primary from
// genesis); any discontinuity — a dropped stream message, a heartbeat
// whose sequence is ahead of ours, a corrupt batch — marks the replica
// gapped. A gapped replica stops applying (its copy would diverge) and
// reports NeedResync until Resync installs a full state snapshot.
type Apply struct {
	mu  sync.Mutex
	sub *topic.Subscriber
	reg *nameservice.TopicRegistry
	st  *Store // optional: standby durability

	lastSeq    uint64
	primaryGen uint64
	gap        bool

	applied    uint64
	heartbeats uint64
	skipped    uint64
}

// NewApply wraps the standby's stream subscriber. st may be nil (a
// diskless replica).
func NewApply(sub *topic.Subscriber, reg *nameservice.TopicRegistry, st *Store) *Apply {
	return &Apply{sub: sub, reg: reg, st: st}
}

// Drain consumes every waiting stream message, returning how many were
// processed. Call it on the standby's housekeeping cadence.
func (a *Apply) Drain() int {
	n := 0
	for {
		payload, _, ok := a.sub.Receive()
		if !ok {
			return n
		}
		a.mu.Lock()
		a.feedLocked(payload)
		a.mu.Unlock()
		n++
	}
}

// feedLocked parses one batch. Caller holds a.mu.
func (a *Apply) feedLocked(b []byte) {
	for len(b) > 0 {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			a.gap = true // corrupt stream bytes: treat as lost records
			return
		}
		a.applyLocked(&rec, b[:n])
		b = b[n:]
	}
}

// applyLocked applies one record. Caller holds a.mu.
func (a *Apply) applyLocked(rec *Record, framed []byte) {
	if rec.Type == RecHeartbeat {
		a.heartbeats++
		if rec.Gen > a.primaryGen {
			a.primaryGen = rec.Gen
		}
		if rec.Seq != a.lastSeq {
			a.gap = true // the primary is ahead of (or behind) our copy
		}
		return
	}
	if rec.Seq <= a.lastSeq {
		a.skipped++ // duplicate or pre-resync record
		return
	}
	if a.gap {
		return // diverged: wait for resync, do not compound
	}
	if rec.Seq != a.lastSeq+1 {
		a.gap = true
		return
	}
	if err := applyRecord(a.reg, rec); err != nil {
		a.gap = true
		return
	}
	if rec.Type == RecFence && rec.Gen > a.primaryGen {
		a.primaryGen = rec.Gen
	}
	a.lastSeq = rec.Seq
	a.applied++
	if a.st != nil {
		a.st.AppendRaw(rec, framed)
	}
}

// NeedResync reports whether the replica has diverged and needs a full
// state snapshot.
func (a *Apply) NeedResync() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gap
}

// Resync installs a full state snapshot exported by the primary at
// sequence seq (captured before the export, so records the snapshot
// already reflects replay harmlessly; see Store.Compact for why the
// overlap is safe). Clears the gap and resumes stream application at
// seq+1. The replica's local log is discarded wholesale: it may hold a
// divergent history (an ex-primary's unreplicated tail, possibly with
// sequence numbers above seq), and the snapshot supersedes all of it.
func (a *Apply) Resync(state nameservice.RegistryState, seq uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reg.RestoreState(state)
	a.lastSeq = seq
	a.gap = false
	if state.Gen > a.primaryGen {
		a.primaryGen = state.Gen
	}
	if a.st != nil {
		return a.st.ResetTo(state, seq)
	}
	return nil
}

// Renew refreshes the stream subscription's lease at the primary.
func (a *Apply) Renew() error { return a.sub.Renew() }

// LastSeq returns the last applied sequence number.
func (a *Apply) LastSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSeq
}

// PrimaryGen returns the highest primary registry generation observed
// on the stream (heartbeats and fences) or via resync.
func (a *Apply) PrimaryGen() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.primaryGen
}

// Applied returns the records applied to the replica.
func (a *Apply) Applied() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// Heartbeats returns the heartbeats observed.
func (a *Apply) Heartbeats() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.heartbeats
}
