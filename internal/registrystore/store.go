package registrystore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"flipc/internal/nameservice"
	"flipc/internal/recio"
	"flipc/internal/wire"
)

// File names inside a store directory.
const (
	walName  = "wal.log"
	snapName = "snapshot.dat"
)

// snapMagic marks a snapshot file ("FLPR").
const snapMagic = 0x464C5052

// snapVersion is the snapshot format version written. Version 2 added
// the per-topic durable-stream cursor section; version 1 files (no
// cursor section) are still read, so a snapshot taken before the
// upgrade recovers cleanly.
const (
	snapVersion   = 2
	snapVersionV1 = 1
)

// Store persists one registry's state: a write-ahead record log plus a
// periodically compacted snapshot. Journal writes are ordered ahead of
// mutation acknowledgement (the registry's observer runs under its
// lock, before the mutating call returns), and every record that can
// move a membership generation is synced to stable storage before the
// journal call returns — so a recovered registry's generations exactly
// reconstruct what was served. Lease renewals are written unsynced
// (they never move generations, and recovery restamps leases anyway),
// keeping the steady-state renewal path cheap.
type Store struct {
	mu         sync.Mutex
	dir        string
	wal        *os.File
	seq        uint64 // last sequence number assigned or applied
	snapSeq    uint64 // sequence covered by the snapshot file
	walRecords int    // records in the log since the last compaction
	nosync     bool
	err        error // sticky I/O error; surfaced in Health
	enc        []byte
}

// Options tunes a store.
type Options struct {
	// NoSync disables fsync on generation-moving records (tests and
	// benchmarks; a production registry should leave it off).
	NoSync bool
}

// Open opens (creating if necessary) the store in dir and replays its
// snapshot and record log into reg, wholesale-replacing reg's state.
// The log's torn tail, if any, is truncated: a record cut short by a
// crash mid-write was never acknowledged, so dropping it is exact.
//
// Open recovers state only; it does not fence a new incarnation or
// attach the journal — that is role policy, owned by Manager (a
// primary fences and journals; a standby's state instead tracks the
// replication stream).
func Open(dir string, reg *nameservice.TopicRegistry, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registrystore: %w", err)
	}
	s := &Store{dir: dir, nosync: opt.NoSync}

	state, snapSeq, err := readSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	reg.RestoreState(state)
	s.snapSeq, s.seq = snapSeq, snapSeq

	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registrystore: %w", err)
	}
	s.wal = wal
	if err := s.replayWAL(reg); err != nil {
		wal.Close()
		return nil, err
	}
	return s, nil
}

// replayWAL replays every intact record onto reg and truncates the log
// after the last one (dropping a torn or corrupt tail). Records at or
// below the snapshot's sequence are skipped: they are already reflected
// in the restored state.
func (s *Store) replayWAL(reg *nameservice.TopicRegistry) error {
	fi, err := s.wal.Stat()
	if err != nil {
		return fmt.Errorf("registrystore: %w", err)
	}
	buf := make([]byte, fi.Size())
	if _, err := s.wal.ReadAt(buf, 0); err != nil && fi.Size() > 0 {
		return fmt.Errorf("registrystore: read log: %w", err)
	}
	off := 0
	for off < len(buf) {
		rec, n, err := DecodeRecord(buf[off:])
		if err != nil {
			// Torn tail (short) or corruption: everything beyond this
			// point was never acknowledged as durable in order, so the
			// incarnation ends here.
			break
		}
		if rec.Seq > s.snapSeq {
			if err := applyRecord(reg, &rec); err != nil {
				return fmt.Errorf("registrystore: replay %v: %w", rec.Type, err)
			}
			if rec.Seq > s.seq {
				s.seq = rec.Seq
			}
			s.walRecords++
		}
		off += n
	}
	if int64(off) != fi.Size() {
		if err := s.wal.Truncate(int64(off)); err != nil {
			return fmt.Errorf("registrystore: truncate torn tail: %w", err)
		}
	}
	if _, err := s.wal.Seek(0, 2); err != nil {
		return fmt.Errorf("registrystore: %w", err)
	}
	return nil
}

// needsSync reports whether t can move a membership generation and must
// therefore reach stable storage before the mutation is acknowledged.
// Cursor acks are unsynced like renewals: one lost to a crash is
// re-merged from the next in-band acknowledgement, and a stale cursor
// only means extra (idempotent) replay, never data loss.
func needsSync(t RecType) bool {
	return t != RecRenew && t != RecHeartbeat && t != RecCursorAck
}

// Journal assigns the next sequence number to rec, appends it to the
// log (synced per needsSync), and returns the framed bytes — the exact
// encoding the replication stream forwards, so log and stream can never
// disagree. Returns nil after a sticky I/O error (surfaced in Health).
func (s *Store) Journal(rec *Record) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil
	}
	s.seq++
	rec.Seq = s.seq
	// Newly journaled records carry the current frame version; replayed
	// and replicated bytes keep whatever version they were written with.
	rec.Ver = recio.V1
	s.enc = s.enc[:0]
	framed, err := AppendRecord(s.enc, rec)
	if err != nil {
		s.err = err
		return nil
	}
	s.enc = framed
	if err := s.writeLocked(framed, needsSync(rec.Type)); err != nil {
		return nil
	}
	out := make([]byte, len(framed))
	copy(out, framed)
	return out
}

// AppendRaw appends an already-framed record received from the
// replication stream (the standby's log path), preserving the
// primary's sequence number.
func (s *Store) AppendRaw(rec *Record, framed []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.writeLocked(framed, needsSync(rec.Type)); err != nil {
		return err
	}
	if rec.Seq > s.seq {
		s.seq = rec.Seq
	}
	return nil
}

// writeLocked appends bytes to the log. Caller holds s.mu.
func (s *Store) writeLocked(b []byte, sync bool) error {
	if _, err := s.wal.Write(b); err != nil {
		s.err = fmt.Errorf("registrystore: log write: %w", err)
		return s.err
	}
	if sync && !s.nosync {
		if err := s.wal.Sync(); err != nil {
			s.err = fmt.Errorf("registrystore: log sync: %w", err)
			return s.err
		}
	}
	s.walRecords++
	return nil
}

// ResetTo installs a full-state snapshot at seq and discards the
// entire local log (standby resync). The snapshot supersedes all local
// history: a demoted or restarted ex-primary's log may describe a
// divergent timeline whose records carry sequence numbers above the
// resync point, and retaining any of them would replay divergent state
// on top of the new primary's snapshot at the next restart.
func (s *Store) ResetTo(state nameservice.RegistryState, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := writeSnapshot(filepath.Join(s.dir, snapName), state, seq, s.nosync); err != nil {
		s.err = err
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		s.err = fmt.Errorf("registrystore: truncate log: %w", err)
		return s.err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		s.err = fmt.Errorf("registrystore: %w", err)
		return s.err
	}
	s.seq = seq
	s.snapSeq = seq
	s.walRecords = 0
	return nil
}

// Seq returns the last sequence number assigned or applied.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// WALRecords returns the records accumulated in the log since the last
// compaction — the operator's WAL-lag signal.
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// SnapshotSeq returns the sequence number the snapshot file covers.
func (s *Store) SnapshotSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// Err returns the sticky I/O error, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close closes the log (syncing buffered renewals).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	if !s.nosync {
		s.wal.Sync()
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Compact snapshots reg's current state and drops the log records the
// snapshot covers.
//
// Locking discipline: the registry export must happen outside s.mu
// (a registry mutation in flight holds the registry lock while calling
// Journal, which takes s.mu — exporting under s.mu would deadlock), so
// the snapshot may include mutations journaled after seqBefore was
// captured. Those records are retained in the log and will replay on
// top of the snapshot at recovery; replay of the registry's mutation
// records over a state that already reflects them is idempotent for
// membership and never moves a generation spuriously downward, so the
// overlap is harmless.
func (s *Store) Compact(reg *nameservice.TopicRegistry) error {
	s.mu.Lock()
	seqBefore := s.seq
	s.mu.Unlock()
	state := reg.ExportState()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := writeSnapshot(filepath.Join(s.dir, snapName), state, seqBefore, s.nosync); err != nil {
		s.err = err
		return err
	}
	// Rewrite the log keeping only records beyond the snapshot.
	fi, err := s.wal.Stat()
	if err != nil {
		s.err = fmt.Errorf("registrystore: %w", err)
		return s.err
	}
	buf := make([]byte, fi.Size())
	if _, err := s.wal.ReadAt(buf, 0); err != nil && fi.Size() > 0 {
		s.err = fmt.Errorf("registrystore: %w", err)
		return s.err
	}
	var keep []byte
	kept := 0
	for off := 0; off < len(buf); {
		rec, n, err := DecodeRecord(buf[off:])
		if err != nil {
			break
		}
		if rec.Seq > seqBefore {
			keep = append(keep, buf[off:off+n]...)
			kept++
		}
		off += n
	}
	tmp := filepath.Join(s.dir, walName+".tmp")
	if err := os.WriteFile(tmp, keep, 0o644); err != nil {
		s.err = fmt.Errorf("registrystore: %w", err)
		return s.err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, walName)); err != nil {
		s.err = fmt.Errorf("registrystore: %w", err)
		return s.err
	}
	wal, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		s.err = fmt.Errorf("registrystore: %w", err)
		return s.err
	}
	s.wal.Close()
	s.wal = wal
	s.snapSeq = seqBefore
	s.walRecords = kept
	return nil
}

// writeSnapshot writes state atomically (tmp file + rename), CRC-framed
// with the same checksum machinery as records and wire frames.
func writeSnapshot(path string, state nameservice.RegistryState, seq uint64, nosync bool) error {
	var b []byte
	var hdr [29]byte
	binary.BigEndian.PutUint32(hdr[0:4], snapMagic)
	hdr[4] = snapVersion
	binary.BigEndian.PutUint64(hdr[5:13], state.Gen)
	binary.BigEndian.PutUint64(hdr[13:21], seq)
	binary.BigEndian.PutUint64(hdr[21:29], state.Epoch)
	b = append(b, hdr[:]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(state.Topics)))
	b = append(b, u32[:]...)
	for _, t := range state.Topics {
		if len(t.Name) == 0 || len(t.Name) > MaxTopicLen {
			return fmt.Errorf("registrystore: snapshot topic name %d bytes", len(t.Name))
		}
		b = append(b, byte(len(t.Name)))
		b = append(b, t.Name...)
		b = append(b, t.Class)
		binary.BigEndian.PutUint32(u32[:], t.Gen)
		b = append(b, u32[:]...)
		binary.BigEndian.PutUint32(u32[:], uint32(len(t.Subs)))
		b = append(b, u32[:]...)
		var sub [12]byte
		for _, s := range t.Subs {
			binary.BigEndian.PutUint32(sub[0:4], uint32(s.Addr))
			binary.BigEndian.PutUint64(sub[4:12], s.Epoch)
			b = append(b, sub[:]...)
		}
		binary.BigEndian.PutUint32(u32[:], uint32(len(t.Cursors)))
		b = append(b, u32[:]...)
		var seq8 [8]byte
		for _, c := range t.Cursors {
			if len(c.Sub) == 0 || len(c.Sub) > 255 {
				return fmt.Errorf("registrystore: snapshot cursor name %d bytes", len(c.Sub))
			}
			b = append(b, byte(len(c.Sub)))
			b = append(b, c.Sub...)
			binary.BigEndian.PutUint64(seq8[:], c.Seq)
			b = append(b, seq8[:]...)
		}
	}
	binary.BigEndian.PutUint32(u32[:], wire.Checksum(b))
	b = append(b, u32[:]...)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("registrystore: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("registrystore: %w", err)
	}
	if !nosync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("registrystore: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("registrystore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("registrystore: %w", err)
	}
	return nil
}

// readSnapshot loads a snapshot file. A missing file is an empty state;
// a corrupt one (bad magic, version, structure, or checksum) is
// reported — recovery must not silently serve partial state.
func readSnapshot(path string) (nameservice.RegistryState, uint64, error) {
	var state nameservice.RegistryState
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return state, 0, nil
	}
	if err != nil {
		return state, 0, fmt.Errorf("registrystore: %w", err)
	}
	if len(b) < 37 { // header + count + CRC
		return state, 0, fmt.Errorf("%w: snapshot %d bytes", ErrCorrupt, len(b))
	}
	body, crc := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if wire.Checksum(body) != crc {
		return state, 0, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	if binary.BigEndian.Uint32(body[0:4]) != snapMagic ||
		(body[4] != snapVersion && body[4] != snapVersionV1) {
		return state, 0, fmt.Errorf("%w: snapshot magic/version", ErrCorrupt)
	}
	hasCursors := body[4] >= snapVersion
	state.Gen = binary.BigEndian.Uint64(body[5:13])
	seq := binary.BigEndian.Uint64(body[13:21])
	state.Epoch = binary.BigEndian.Uint64(body[21:29])
	n := int(binary.BigEndian.Uint32(body[29:33]))
	off := 33
	for i := 0; i < n; i++ {
		if off+1 > len(body) {
			return state, 0, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
		}
		nameLen := int(body[off])
		off++
		if nameLen == 0 || off+nameLen+9 > len(body) {
			return state, 0, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
		}
		t := nameservice.TopicState{Name: string(body[off : off+nameLen])}
		off += nameLen
		t.Class = body[off]
		t.Gen = binary.BigEndian.Uint32(body[off+1 : off+5])
		subs := int(binary.BigEndian.Uint32(body[off+5 : off+9]))
		off += 9
		if off+12*subs > len(body) {
			return state, 0, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
		}
		for j := 0; j < subs; j++ {
			t.Subs = append(t.Subs, nameservice.Subscription{
				Addr:  wire.Addr(binary.BigEndian.Uint32(body[off : off+4])),
				Epoch: binary.BigEndian.Uint64(body[off+4 : off+12]),
			})
			off += 12
		}
		if hasCursors {
			if off+4 > len(body) {
				return state, 0, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
			}
			cursors := int(binary.BigEndian.Uint32(body[off : off+4]))
			off += 4
			for j := 0; j < cursors; j++ {
				if off+1 > len(body) {
					return state, 0, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
				}
				subLen := int(body[off])
				off++
				if subLen == 0 || off+subLen+8 > len(body) {
					return state, 0, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
				}
				t.Cursors = append(t.Cursors, nameservice.Cursor{
					Sub: string(body[off : off+subLen]),
					Seq: binary.BigEndian.Uint64(body[off+subLen : off+subLen+8]),
				})
				off += subLen + 8
			}
		}
		state.Topics = append(state.Topics, t)
	}
	return state, seq, nil
}
