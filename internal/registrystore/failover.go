package registrystore

import (
	"sync"

	"flipc/internal/nameservice"
)

// Role is a registry node's current role.
type Role uint8

const (
	// RoleStandby tracks the primary's mutation stream and serves no
	// mutations of its own.
	RoleStandby Role = iota
	// RolePrimary serves mutations, journals them, and feeds the
	// replication stream.
	RolePrimary
)

// String names the role.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "standby"
}

// Manager owns a registry node's role policy: when to journal (primary
// only), how to fence a promotion, and when to yield to a peer whose
// fence is at or above ours (the double-failover rule).
//
// Promotion fencing: the new primary serves at
// max(recovered generation, highest peer generation observed) + 1 —
// strictly above everything any incarnation ever served — bumps every
// topic's membership generation so cached publisher plans read as
// stale, journals the fence (making the incarnation boundary part of
// the log, so later replays reconstruct generations exactly), and
// restamps every lease so divergent subscriber sets reconcile by
// re-validation instead of mass expiry.
type Manager struct {
	mu   sync.Mutex
	role Role
	reg  *nameservice.TopicRegistry
	st   *Store
	feed *Feed

	floor      uint64 // highest peer registry generation observed
	promotions uint64
	demotions  uint64
}

// NewManager wraps a recovered (Open'd) store and its registry. The
// node starts as a standby; call Promote to begin serving.
func NewManager(reg *nameservice.TopicRegistry, st *Store) *Manager {
	return &Manager{reg: reg, st: st}
}

// AttachFeed connects the replication stream (primary side). Journaled
// records are enqueued to it from the mutation observer.
func (m *Manager) AttachFeed(f *Feed) {
	m.mu.Lock()
	m.feed = f
	m.mu.Unlock()
}

// Role returns the node's current role.
func (m *Manager) Role() Role {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.role
}

// Promote fences a new incarnation and starts serving as primary,
// returning the fenced registry generation. Idempotent: promoting a
// primary returns its current generation without a new fence.
func (m *Manager) Promote() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role == RolePrimary {
		return m.reg.RegistryGen()
	}
	gen := m.reg.RegistryGen()
	if m.floor > gen {
		gen = m.floor
	}
	gen++
	m.reg.SetRegistryGen(gen)
	m.reg.BumpTopicGens()
	m.reg.RestampLeases()
	rec := Record{Type: RecFence, Gen: gen}
	framed := m.st.Journal(&rec)
	if framed != nil && m.feed != nil {
		m.feed.Enqueue(rec.Seq, framed)
	}
	m.reg.Observe(m.observe)
	m.role = RolePrimary
	m.promotions++
	return gen
}

// observe is the primary's mutation observer: write-ahead journal plus
// replication enqueue, called under the registry lock before the
// mutating call returns.
func (m *Manager) observe(mut nameservice.Mutation) {
	rec, ok := recordOf(mut)
	if !ok {
		return
	}
	framed := m.st.Journal(&rec)
	if framed == nil {
		// The mutation could not be made durable (sticky store error):
		// self-demote rather than keep acknowledging non-durable,
		// non-replicated mutations. The observer stays attached — we
		// are under the registry lock, so detaching here would
		// deadlock — but journals nothing further, and a server
		// consulting the role refuses mutations once it reads standby.
		m.mu.Lock()
		if m.role == RolePrimary && m.st.Err() != nil {
			m.role = RoleStandby
			m.demotions++
		}
		m.mu.Unlock()
		return
	}
	m.mu.Lock()
	feed := m.feed
	m.mu.Unlock()
	if feed != nil {
		feed.Enqueue(rec.Seq, framed)
	}
}

// ObservePeer records a peer registry generation. If this node is
// primary and the peer's fence is at or above ours, the peer has taken
// over (or we raced a takeover): this node yields — detaches the
// journal and returns to standby — and reports true. A returning
// primary must call this with the new primary's generation before
// attempting to serve; the recorded floor also guarantees any later
// Promote fences strictly above the peer.
func (m *Manager) ObservePeer(gen uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if gen > m.floor {
		m.floor = gen
	}
	if m.role == RolePrimary && gen >= m.reg.RegistryGen() {
		m.reg.Observe(nil)
		m.role = RoleStandby
		m.demotions++
		return true
	}
	return false
}

// Heartbeat enqueues a replication heartbeat if this node is primary
// with a feed attached. The heartbeat's sequence number is the feed's
// own cursor (see Feed.Heartbeat), not the store's: the store cursor
// can run ahead of the enqueue order under concurrent mutation.
func (m *Manager) Heartbeat() {
	m.mu.Lock()
	feed, role := m.feed, m.role
	m.mu.Unlock()
	if role == RolePrimary && feed != nil {
		feed.Heartbeat(m.reg.RegistryGen())
	}
}

// Health is the registry node's durability/failover status — what
// /healthz reports and flipcstat watches.
type Health struct {
	Role        string `json:"role"`
	RegistryGen uint64 `json:"registry_gen"`
	Seq         uint64 `json:"seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	WALRecords  int    `json:"wal_records"`
	Epoch       uint64 `json:"epoch"`
	Promotions  uint64 `json:"promotions"`
	Demotions   uint64 `json:"demotions"`
	StoreErr    string `json:"store_err,omitempty"`
}

// Health snapshots the node's durability/failover status.
func (m *Manager) Health() Health {
	m.mu.Lock()
	role, promos, demos := m.role, m.promotions, m.demotions
	m.mu.Unlock()
	h := Health{
		Role:        role.String(),
		RegistryGen: m.reg.RegistryGen(),
		Seq:         m.st.Seq(),
		SnapshotSeq: m.st.SnapshotSeq(),
		WALRecords:  m.st.WALRecords(),
		Epoch:       m.reg.Epoch(),
		Promotions:  promos,
		Demotions:   demos,
	}
	if err := m.st.Err(); err != nil {
		h.StoreErr = err.Error()
	}
	return h
}
