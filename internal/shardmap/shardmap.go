// Package shardmap is the consistent-hash shard map that partitions
// the topic namespace across N independent registry shards. The map is
// deliberately tiny — a handful of entries, a virtual-node ring, and a
// monotone epoch — because it is itself a replicated object: every
// mutation (add, remove, address hint) is journaled as a recio v1
// record whose extension area carries the post-mutation shard epoch,
// so a reader that predates the extension still replays the entry
// payload and a shard split rolls out mixed-version, no flag day.
//
// Routing is a pure function of the map: ShardOf hashes the topic name
// onto a 64-bit ring of virtual points (Weight points per shard) and
// picks the successor shard. Reserved per-shard replication streams
// ("!registry/<n>") route to their own shard by construction, not by
// hash — the stream for shard n must live on shard n, whatever the
// ring says.
//
// The Map is not internally synchronized: it is built (or replayed)
// once and read concurrently, and mutations go through a holder that
// swaps whole maps (topic.ShardedDirectory, shardmap.Journal) or are
// externally serialized.
package shardmap

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultWeight is the virtual-node count used for entries added with
// Weight 0. 64 points per shard keeps the largest/smallest ownership
// arc within ~2x at small N, which is as balanced as a topic namespace
// hashed by name can use.
const DefaultWeight = 64

// reservedStreamPrefix mirrors registrystore.ShardReplicationTopic:
// "!registry/<n>" is shard n's own replication stream and must route
// to shard n regardless of the ring.
const reservedStreamPrefix = "!registry/"

// Entry is one registry shard in the map. Addr is an optional endpoint
// hint (a wire.Addr as uint32; 0 = none) naming the shard's current
// primary registry server — the roll-up prober and client bootstrap
// use it, routing does not.
type Entry struct {
	ID     uint32
	Weight uint16
	Addr   uint32
}

// entryBytes is the fixed encoding of one Entry: id(4) weight(2) addr(4).
const entryBytes = 10

type point struct {
	hash uint64
	id   uint32
}

// Map is a consistent-hash shard map: entries sorted by ID, virtual
// points sorted by hash, and an epoch that moves on every mutation so
// routers and servers can detect staleness (the NotOwner redirect).
type Map struct {
	epoch   uint64
	entries []Entry
	ring    []point
}

// New returns an empty map at epoch 0.
func New() *Map { return &Map{} }

// Restore builds a map directly from an epoch and entry set (a decoded
// snapshot or a remote shard-map fetch).
func Restore(epoch uint64, entries []Entry) *Map {
	m := &Map{epoch: epoch, entries: append([]Entry(nil), entries...)}
	m.normalize()
	return m
}

// Epoch returns the map epoch: monotone across mutations, carried in
// journal record extensions and the shard-map remote op.
func (m *Map) Epoch() uint64 { return m.epoch }

// Len returns the number of shards.
func (m *Map) Len() int { return len(m.entries) }

// Entries returns the shard entries, sorted by ID. The slice is a
// copy.
func (m *Map) Entries() []Entry { return append([]Entry(nil), m.entries...) }

// Entry returns the entry for shard id.
func (m *Map) Entry(id uint32) (Entry, bool) {
	i := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].ID >= id })
	if i < len(m.entries) && m.entries[i].ID == id {
		return m.entries[i], true
	}
	return Entry{}, false
}

// Clone returns an independent copy.
func (m *Map) Clone() *Map { return Restore(m.epoch, m.entries) }

// normalize sorts entries, applies the default weight, and rebuilds
// the ring.
func (m *Map) normalize() {
	sort.Slice(m.entries, func(i, j int) bool { return m.entries[i].ID < m.entries[j].ID })
	m.ring = m.ring[:0]
	for i := range m.entries {
		if m.entries[i].Weight == 0 {
			m.entries[i].Weight = DefaultWeight
		}
		e := m.entries[i]
		var key [12]byte
		binary.BigEndian.PutUint32(key[0:4], e.ID)
		for v := 0; v < int(e.Weight); v++ {
			binary.BigEndian.PutUint64(key[4:12], uint64(v))
			m.ring = append(m.ring, point{hash: fnv64(key[:]), id: e.ID})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		return m.ring[i].id < m.ring[j].id // deterministic on (vanishingly rare) collisions
	})
}

// Add inserts a shard and bumps the epoch. Weight 0 takes
// DefaultWeight.
func (m *Map) Add(e Entry) error {
	if _, ok := m.Entry(e.ID); ok {
		return fmt.Errorf("shardmap: shard %d already mapped", e.ID)
	}
	m.entries = append(m.entries, e)
	m.normalize()
	m.epoch++
	return nil
}

// Remove deletes a shard (a merge: its arc falls to the ring
// successors) and bumps the epoch.
func (m *Map) Remove(id uint32) error {
	for i, e := range m.entries {
		if e.ID == id {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			m.normalize()
			m.epoch++
			return nil
		}
	}
	return fmt.Errorf("shardmap: shard %d not mapped", id)
}

// SetAddr updates a shard's endpoint hint and bumps the epoch (a
// failover moved the shard's primary; routers re-probe).
func (m *Map) SetAddr(id uint32, addr uint32) error {
	for i := range m.entries {
		if m.entries[i].ID == id {
			m.entries[i].Addr = addr
			m.epoch++
			return nil
		}
	}
	return fmt.Errorf("shardmap: shard %d not mapped", id)
}

// ShardOf routes a topic name to its owning shard. Reserved per-shard
// replication streams ("!registry/<n>") route to shard n when it is
// mapped. Returns false only for an empty map.
func (m *Map) ShardOf(name string) (uint32, bool) {
	if len(m.ring) == 0 {
		return 0, false
	}
	if rest, ok := strings.CutPrefix(name, reservedStreamPrefix); ok {
		if id, err := strconv.ParseUint(rest, 10, 32); err == nil {
			if _, mapped := m.Entry(uint32(id)); mapped {
				return uint32(id), true
			}
		}
	}
	h := fnv64([]byte(name))
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0 // wrap: successor of the highest point is the lowest
	}
	return m.ring[i].id, true
}

// Encode appends the map's snapshot encoding to dst:
// epoch(8) | count(2) | count x entry(10). This is both the RecSnap
// journal payload and the shard-map remote op's entry layout.
func (m *Map) Encode(dst []byte) []byte {
	var hdr [10]byte
	binary.BigEndian.PutUint64(hdr[0:8], m.epoch)
	binary.BigEndian.PutUint16(hdr[8:10], uint16(len(m.entries)))
	dst = append(dst, hdr[:]...)
	for _, e := range m.entries {
		dst = appendEntry(dst, e)
	}
	return dst
}

// DecodeMap parses a snapshot encoding produced by Encode.
func DecodeMap(b []byte) (*Map, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("shardmap: snapshot %d bytes, need 10", len(b))
	}
	epoch := binary.BigEndian.Uint64(b[0:8])
	count := int(binary.BigEndian.Uint16(b[8:10]))
	if len(b) != 10+count*entryBytes {
		return nil, fmt.Errorf("shardmap: snapshot %d bytes, want %d for %d entries",
			len(b), 10+count*entryBytes, count)
	}
	entries := make([]Entry, count)
	for i := 0; i < count; i++ {
		entries[i] = decodeEntry(b[10+i*entryBytes:])
	}
	seen := map[uint32]bool{}
	for _, e := range entries {
		if seen[e.ID] {
			return nil, fmt.Errorf("shardmap: snapshot repeats shard %d", e.ID)
		}
		seen[e.ID] = true
	}
	return Restore(epoch, entries), nil
}

func appendEntry(dst []byte, e Entry) []byte {
	var buf [entryBytes]byte
	binary.BigEndian.PutUint32(buf[0:4], e.ID)
	binary.BigEndian.PutUint16(buf[4:6], e.Weight)
	binary.BigEndian.PutUint32(buf[6:10], e.Addr)
	return append(dst, buf[:]...)
}

func decodeEntry(b []byte) Entry {
	return Entry{
		ID:     binary.BigEndian.Uint32(b[0:4]),
		Weight: binary.BigEndian.Uint16(b[4:6]),
		Addr:   binary.BigEndian.Uint32(b[6:10]),
	}
}

// ParseSpec builds a map from a flag-friendly spec: comma-separated
// shard elements "id", "id@hexaddr", or "id@hexaddr*weight" (the addr
// is an endpoint hint as flipcd prints them, with or without 0x). The
// map starts at epoch = element count, as if each shard had been Added
// in order.
func ParseSpec(spec string) (*Map, error) {
	m := New()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var e Entry
		if i := strings.IndexByte(part, '*'); i >= 0 {
			w, err := strconv.ParseUint(part[i+1:], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("shardmap: bad weight in %q: %w", part, err)
			}
			e.Weight = uint16(w)
			part = part[:i]
		}
		if i := strings.IndexByte(part, '@'); i >= 0 {
			hex := strings.TrimPrefix(strings.TrimPrefix(part[i+1:], "0x"), "0X")
			a, err := strconv.ParseUint(hex, 16, 32)
			if err != nil {
				return nil, fmt.Errorf("shardmap: bad addr in %q: %w", part, err)
			}
			e.Addr = uint32(a)
			part = part[:i]
		}
		id, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("shardmap: bad shard id in %q: %w", part, err)
		}
		e.ID = uint32(id)
		if err := m.Add(e); err != nil {
			return nil, err
		}
	}
	if m.Len() == 0 {
		return nil, fmt.Errorf("shardmap: empty spec %q", spec)
	}
	return m, nil
}

// fnv64 is FNV-1a with an avalanche finalizer, the routing hash: fast,
// allocation-free, and stable across versions (the ring layout is part
// of the replicated state, so this function can never change without a
// map-epoch migration). The finalizer matters: raw FNV-1a mixes the
// final differing byte through a single multiply, which clusters the
// near-identical vnode keys badly enough to unbalance the ring.
func fnv64(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
