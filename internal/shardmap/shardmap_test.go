package shardmap

import (
	"fmt"
	"testing"
)

func threeShards(t *testing.T) *Map {
	t.Helper()
	m := New()
	for id := uint32(0); id < 3; id++ {
		if err := m.Add(Entry{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestRoutingDeterministicAndTotal(t *testing.T) {
	m := threeShards(t)
	n := m.Clone()
	counts := map[uint32]int{}
	for i := 0; i < 3000; i++ {
		name := fmt.Sprintf("topic-%d", i)
		a, ok := m.ShardOf(name)
		if !ok {
			t.Fatalf("ShardOf(%q) not routable on a populated map", name)
		}
		b, _ := n.ShardOf(name)
		if a != b {
			t.Fatalf("ShardOf(%q) differs between identical maps: %d vs %d", name, a, b)
		}
		counts[a]++
	}
	// Balance: with 64 vnodes per shard every shard must own a
	// substantial slice of a 3000-topic namespace.
	for id := uint32(0); id < 3; id++ {
		if counts[id] < 300 {
			t.Fatalf("shard %d owns only %d/3000 topics — ring unbalanced: %v", id, counts[id], counts)
		}
	}
}

func TestRemoveOnlyMovesVictimsTopics(t *testing.T) {
	m := threeShards(t)
	owner := map[string]uint32{}
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("t%d", i)
		owner[name], _ = m.ShardOf(name)
	}
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	for name, was := range owner {
		now, ok := m.ShardOf(name)
		if !ok {
			t.Fatalf("ShardOf(%q) lost after remove", name)
		}
		if was != 1 && now != was {
			t.Fatalf("topic %q moved %d→%d though shard 1 was removed — consistent hashing violated",
				name, was, now)
		}
		if was == 1 && now == 1 {
			t.Fatalf("topic %q still routed to removed shard 1", name)
		}
	}
}

func TestEpochMovesOnEveryMutation(t *testing.T) {
	m := New()
	if m.Epoch() != 0 {
		t.Fatalf("fresh map at epoch %d", m.Epoch())
	}
	steps := []func() error{
		func() error { return m.Add(Entry{ID: 7}) },
		func() error { return m.Add(Entry{ID: 9}) },
		func() error { return m.SetAddr(9, 0xABCD) },
		func() error { return m.Remove(7) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatal(err)
		}
		if got := m.Epoch(); got != uint64(i+1) {
			t.Fatalf("after mutation %d epoch is %d", i+1, got)
		}
	}
	if err := m.Add(Entry{ID: 9}); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if err := m.Remove(42); err == nil {
		t.Fatal("Remove of unmapped shard accepted")
	}
	if m.Epoch() != uint64(len(steps)) {
		t.Fatalf("failed mutations moved the epoch to %d", m.Epoch())
	}
}

func TestReservedStreamRoutesToItsShard(t *testing.T) {
	m := threeShards(t)
	for id := uint32(0); id < 3; id++ {
		got, ok := m.ShardOf(fmt.Sprintf("!registry/%d", id))
		if !ok || got != id {
			t.Fatalf("!registry/%d routed to shard %d (ok=%v), want its own shard", id, got, ok)
		}
	}
	// An unmapped suffix falls back to the hash ring, and a foreign
	// reserved name routes somewhere, not nowhere.
	if _, ok := m.ShardOf("!registry/99"); !ok {
		t.Fatal("!registry/99 (unmapped shard) not routable at all")
	}
	if _, ok := m.ShardOf("!registry"); !ok {
		t.Fatal("legacy !registry not routable")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	m := New()
	if err := m.Add(Entry{ID: 3, Weight: 17, Addr: 0xDEAD}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Entry{ID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetAddr(0, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMap(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != m.Epoch() {
		t.Fatalf("epoch %d != %d through the codec", got.Epoch(), m.Epoch())
	}
	ge, me := got.Entries(), m.Entries()
	if len(ge) != len(me) {
		t.Fatalf("entries %v != %v", ge, me)
	}
	for i := range ge {
		if ge[i] != me[i] {
			t.Fatalf("entry %d: %v != %v", i, ge[i], me[i])
		}
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("x%d", i)
		a, _ := m.ShardOf(name)
		b, _ := got.ShardOf(name)
		if a != b {
			t.Fatalf("routing diverged through codec on %q: %d vs %d", name, a, b)
		}
	}
	if _, err := DecodeMap([]byte{1, 2, 3}); err == nil {
		t.Fatal("short snapshot accepted")
	}
	dup := Restore(1, []Entry{{ID: 5}}).Encode(nil)
	dup = append(dup, dup[10:10+entryBytes]...)
	dup[9] = 2 // two copies of shard 5
	if _, err := DecodeMap(dup); err == nil {
		t.Fatal("duplicate-entry snapshot accepted")
	}
}

func TestParseSpec(t *testing.T) {
	m, err := ParseSpec("0@0x1030001, 1@2030001*32 ,2")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || m.Epoch() != 3 {
		t.Fatalf("spec parsed to %d shards at epoch %d", m.Len(), m.Epoch())
	}
	e, _ := m.Entry(0)
	if e.Addr != 0x1030001 || e.Weight != DefaultWeight {
		t.Fatalf("shard 0 entry %+v", e)
	}
	e, _ = m.Entry(1)
	if e.Addr != 0x2030001 || e.Weight != 32 {
		t.Fatalf("shard 1 entry %+v", e)
	}
	for _, bad := range []string{"", "x", "1@zz", "1*99999999", "1,1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
