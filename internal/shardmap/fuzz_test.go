package shardmap

import (
	"bytes"
	"testing"

	"flipc/internal/recio"
)

// FuzzRecord drives the shard-map record codec and the journal
// replayer with arbitrary bytes. Invariants:
//
//   - DecodeRecord never panics and never over-consumes;
//   - any record that decodes re-encodes canonically when it carries a
//     v1 epoch extension (the journal's own writes always do);
//   - Replay never panics, consumes only intact prefixes, and the map
//     it returns always routes (ShardOf total on non-empty maps).
func FuzzRecord(f *testing.F) {
	seed := func(r Record) []byte {
		b, err := AppendRecord(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	snap := Restore(7, []Entry{{ID: 0, Weight: 4}, {ID: 1, Weight: 4, Addr: 0x2030001}}).Encode(nil)
	f.Add(seed(Record{Type: RecAdd, Seq: 1, Epoch: 1, Entry: Entry{ID: 0, Weight: 64}}))
	f.Add(seed(Record{Type: RecRemove, Seq: 2, Epoch: 2, Entry: Entry{ID: 0}}))
	f.Add(seed(Record{Type: RecAddr, Seq: 3, Epoch: 3, Entry: Entry{ID: 1, Addr: 0xBEEF}}))
	f.Add(seed(Record{Type: RecSnap, Seq: 4, Epoch: 7, Snap: snap}))
	// A two-record stream and a torn tail.
	stream := append(seed(Record{Type: RecAdd, Seq: 1, Epoch: 1, Entry: Entry{ID: 2, Weight: 8}}),
		seed(Record{Type: RecAdd, Seq: 2, Epoch: 2, Entry: Entry{ID: 5, Weight: 8}})...)
	f.Add(stream)
	f.Add(stream[:len(stream)-3])
	// Corrupt frame and garbage.
	bad := seed(Record{Type: RecAdd, Seq: 9, Epoch: 9, Entry: Entry{ID: 9}})
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)
	f.Add([]byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, b []byte) {
		if r, n, err := DecodeRecord(b); err == nil {
			if n <= 0 || n > len(b) {
				t.Fatalf("decode consumed %d of %d", n, len(b))
			}
			// Canonical round trip holds for the journal's own shape: a
			// v1 frame whose extension is exactly the 8-byte epoch.
			if fr, _, ferr := recio.Decode(b); ferr == nil &&
				fr.Ver == recio.V1 && len(fr.Ext) == epochExtBytes {
				re, err := AppendRecord(nil, &r)
				if err != nil {
					t.Fatalf("decoded record does not re-encode: %v", err)
				}
				if !bytes.Equal(re, b[:n]) {
					t.Fatalf("decode/re-encode of %x not canonical", b[:n])
				}
			}
		}
		m, _, consumed := Replay(b)
		if consumed < 0 || consumed > len(b) {
			t.Fatalf("replay consumed %d of %d", consumed, len(b))
		}
		if m.Len() > 0 {
			if _, ok := m.ShardOf("probe-topic"); !ok {
				t.Fatal("non-empty replayed map refuses to route")
			}
		}
	})
}
