package shardmap

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"flipc/internal/recio"
)

// The shard map's replicated-object journal: every mutation is one
// recio v1 frame whose extension area carries the 8-byte post-mutation
// shard epoch. The epoch rides the extension — not the payload — so
// the payload layout is exactly what a pre-sharding reader expects and
// skipping the extension (which recio v1 readers do structurally, and
// the mixed-version test proves) loses nothing but the epoch
// fast-path; a replayer without it still reconstructs the epoch by
// counting mutations. That is what lets a split or merge roll out
// across mixed-version nodes.

// Journal record types (the recio type namespace of this package).
const (
	// RecAdd's payload is one Entry: a shard joined the ring.
	RecAdd = 1
	// RecRemove's payload is one Entry (weight/addr as of removal): a
	// shard left the ring (merge).
	RecRemove = 2
	// RecAddr's payload is one Entry carrying the new endpoint hint.
	RecAddr = 3
	// RecSnap's payload is a full Map.Encode snapshot (compaction,
	// bootstrap); replay resets to it.
	RecSnap = 4
)

// epochExtBytes is the v1 extension carried by every journal record:
// the post-mutation shard epoch.
const epochExtBytes = 8

// Record is one decoded shard-map journal record.
type Record struct {
	Type  uint8
	Seq   uint64
	Epoch uint64 // from the v1 extension; 0 on a v0 frame
	Entry Entry  // RecAdd / RecRemove / RecAddr
	Snap  []byte // RecSnap: the Map.Encode payload (aliases input on decode)
}

// AppendRecord encodes r as a recio v1 frame (shard epoch in the
// extension area) and appends it to dst.
func AppendRecord(dst []byte, r *Record) ([]byte, error) {
	var ext [epochExtBytes]byte
	binary.BigEndian.PutUint64(ext[:], r.Epoch)
	f := recio.Frame{Type: r.Type, Ver: recio.V1, Seq: r.Seq, Ext: ext[:]}
	switch r.Type {
	case RecAdd, RecRemove, RecAddr:
		f.Payload = appendEntry(nil, r.Entry)
	case RecSnap:
		f.Payload = r.Snap
	default:
		return dst, fmt.Errorf("shardmap: cannot encode record type %d", r.Type)
	}
	return recio.Append(dst, &f)
}

// DecodeRecord parses one journal record from the front of b,
// returning the record and bytes consumed. A v0 frame (or a v1 frame
// whose extension is too short for an epoch) decodes with Epoch 0 —
// the pre-extension reader's view.
func DecodeRecord(b []byte) (Record, int, error) {
	f, n, err := recio.Decode(b)
	if err != nil {
		return Record{}, 0, err
	}
	r := Record{Type: f.Type, Seq: f.Seq}
	if len(f.Ext) >= epochExtBytes {
		r.Epoch = binary.BigEndian.Uint64(f.Ext[:epochExtBytes])
	}
	switch f.Type {
	case RecAdd, RecRemove, RecAddr:
		if len(f.Payload) != entryBytes {
			return Record{}, 0, fmt.Errorf("%w: shardmap entry record %d bytes", recio.ErrCorrupt, len(f.Payload))
		}
		r.Entry = decodeEntry(f.Payload)
	case RecSnap:
		r.Snap = f.Payload
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown shardmap record type %d", recio.ErrCorrupt, f.Type)
	}
	return r, n, nil
}

// Replay folds the intact prefix of a journal byte stream into a map,
// returning the map, the last sequence applied, and the bytes
// consumed (a torn or corrupt tail ends the replay, like a WAL).
// Record epochs from extensions are authoritative when present; a
// stream of extension-less (v0-read) records still reconstructs the
// same map with epochs counted per mutation.
func Replay(b []byte) (m *Map, seq uint64, consumed int) {
	m = New()
	for consumed < len(b) {
		r, n, err := DecodeRecord(b[consumed:])
		if err != nil {
			return m, seq, consumed
		}
		if err := apply(m, &r); err != nil {
			return m, seq, consumed
		}
		seq = r.Seq
		consumed += n
	}
	return m, seq, consumed
}

// apply folds one record into m. The record's extension epoch, when
// carried, overrides the counted epoch — replicas converge on the
// writer's epoch even if their replay started mid-stream.
func apply(m *Map, r *Record) error {
	switch r.Type {
	case RecAdd:
		if err := m.Add(r.Entry); err != nil {
			return err
		}
	case RecRemove:
		if err := m.Remove(r.Entry.ID); err != nil {
			return err
		}
	case RecAddr:
		if err := m.SetAddr(r.Entry.ID, r.Entry.Addr); err != nil {
			return err
		}
	case RecSnap:
		snap, err := DecodeMap(r.Snap)
		if err != nil {
			return err
		}
		*m = *snap
	default:
		return fmt.Errorf("shardmap: unknown record type %d", r.Type)
	}
	if r.Epoch != 0 {
		m.epoch = r.Epoch
	}
	return nil
}

// Journal is the durable form of the map: an append-only record file
// replayed at open (torn tail truncated, exactly the WAL discipline),
// with every mutation journaled before it is visible. It is the
// authoritative copy a registry deployment shares — flipcd loads it at
// boot and the shard-map remote op distributes it to clients.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	m      *Map
	seq    uint64
	nosync bool
	enc    []byte
}

// JournalOptions tunes a journal.
type JournalOptions struct {
	// NoSync disables fsync after each record (tests, simulations).
	NoSync bool
}

// OpenJournal opens (creating if necessary) the journal at path and
// replays it. A torn or corrupt tail is truncated: an unacknowledged
// mutation never happened.
func OpenJournal(path string, opt JournalOptions) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("shardmap: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shardmap: %w", err)
	}
	buf := make([]byte, fi.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && fi.Size() > 0 {
		f.Close()
		return nil, fmt.Errorf("shardmap: read journal: %w", err)
	}
	m, seq, consumed := Replay(buf)
	if int64(consumed) != fi.Size() {
		if err := f.Truncate(int64(consumed)); err != nil {
			f.Close()
			return nil, fmt.Errorf("shardmap: truncate torn tail: %w", err)
		}
	}
	return &Journal{f: f, m: m, seq: seq, nosync: opt.NoSync}, nil
}

// Map returns a copy of the current map.
func (j *Journal) Map() *Map {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.m.Clone()
}

// Seq returns the last journaled sequence number.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Add journals and applies a shard addition.
func (j *Journal) Add(e Entry) error { return j.mutate(RecAdd, e) }

// Remove journals and applies a shard removal.
func (j *Journal) Remove(id uint32) error { return j.mutate(RecRemove, Entry{ID: id}) }

// SetAddr journals and applies an endpoint-hint update.
func (j *Journal) SetAddr(id uint32, addr uint32) error {
	return j.mutate(RecAddr, Entry{ID: id, Addr: addr})
}

// mutate applies one mutation to a scratch copy, journals the record
// durably, then installs the copy — the map never reflects a mutation
// that failed to journal.
func (j *Journal) mutate(typ uint8, e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	next := j.m.Clone()
	if typ == RecRemove {
		if old, ok := j.m.Entry(e.ID); ok {
			e = old // journal the entry as of removal
		}
	}
	r := Record{Type: typ, Seq: j.seq + 1, Entry: e}
	if err := apply(next, &Record{Type: typ, Entry: e}); err != nil {
		return err
	}
	r.Epoch = next.Epoch()
	var err error
	j.enc, err = AppendRecord(j.enc[:0], &r)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(j.enc); err != nil {
		return fmt.Errorf("shardmap: journal write: %w", err)
	}
	if !j.nosync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("shardmap: journal sync: %w", err)
		}
	}
	j.seq++
	j.m = next
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
