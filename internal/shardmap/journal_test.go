package shardmap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flipc/internal/recio"
)

func TestJournalRecoversAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shardmap.log")
	j, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(0); id < 3; id++ {
		if err := j.Add(Entry{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.SetAddr(2, 0xC0DE); err != nil {
		t.Fatal(err)
	}
	if err := j.Remove(1); err != nil {
		t.Fatal(err)
	}
	before := j.Map()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	after := j2.Map()
	if after.Epoch() != before.Epoch() || after.Epoch() != 5 {
		t.Fatalf("recovered epoch %d, want %d (and 5 mutations)", after.Epoch(), before.Epoch())
	}
	be, ae := before.Entries(), after.Entries()
	if len(be) != len(ae) {
		t.Fatalf("recovered %v, want %v", ae, be)
	}
	for i := range be {
		if be[i] != ae[i] {
			t.Fatalf("entry %d: recovered %v, want %v", i, ae[i], be[i])
		}
	}
	if j2.Seq() != 5 {
		t.Fatalf("recovered seq %d, want 5", j2.Seq())
	}
	// The journal keeps accepting mutations after recovery.
	if err := j2.Add(Entry{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if j2.Map().Epoch() != 6 {
		t.Fatalf("post-recovery mutation at epoch %d", j2.Map().Epoch())
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shardmap.log")
	j, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Add(Entry{ID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := j.Add(Entry{ID: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the final record mid-write.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	m := j2.Map()
	if m.Len() != 1 || m.Epoch() != 1 {
		t.Fatalf("torn journal recovered %d shards at epoch %d, want the 1-shard prefix", m.Len(), m.Epoch())
	}
	// The torn bytes are gone: a new mutation appends cleanly and the
	// next recovery sees both records.
	if err := j2.Add(Entry{ID: 7}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if m := j3.Map(); m.Len() != 2 {
		t.Fatalf("post-truncation journal recovered %d shards, want 2", m.Len())
	}
}

// TestMixedVersionShardEpochExtension is the upgrade-story proof for
// the shard-map records: the shard epoch rides the recio v1 extension
// area, so a reader that predates the extension — one that decodes the
// frame and looks only at the payload, exactly what every v0-era
// record consumer does — still parses the entry correctly and skips
// the epoch structurally. And a genuine v0 frame (no extension at all)
// decodes through DecodeRecord with Epoch 0, so a log written by an
// old node replays on a new one mid-upgrade.
func TestMixedVersionShardEpochExtension(t *testing.T) {
	e := Entry{ID: 11, Weight: 32, Addr: 0xFACE}
	framed, err := AppendRecord(nil, &Record{Type: RecAdd, Seq: 9, Epoch: 77, Entry: e})
	if err != nil {
		t.Fatal(err)
	}

	// The v0-semantics reader: recio decode, payload only. It must see
	// the exact entry payload an extension-less frame would carry.
	f, n, err := recio.Decode(framed)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(framed) {
		t.Fatalf("decode consumed %d of %d", n, len(framed))
	}
	if f.Ver != recio.V1 || len(f.Ext) != epochExtBytes {
		t.Fatalf("frame ver %d ext %d bytes, want v1 with an 8-byte epoch", f.Ver, len(f.Ext))
	}
	v0Frame := recio.Frame{Type: RecAdd, Ver: recio.V0, Seq: 9, Payload: appendEntry(nil, e)}
	v0Bytes, err := recio.Append(nil, &v0Frame)
	if err != nil {
		t.Fatal(err)
	}
	v0, _, err := recio.Decode(v0Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Payload, v0.Payload) {
		t.Fatalf("v1 payload %x differs from the v0 encoding %x — an old reader would misparse", f.Payload, v0.Payload)
	}
	if got := decodeEntry(f.Payload); got != e {
		t.Fatalf("old reader parses entry %+v, want %+v", got, e)
	}

	// The new reader gets the epoch from the extension.
	r, _, err := DecodeRecord(framed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch != 77 || r.Entry != e || r.Seq != 9 {
		t.Fatalf("DecodeRecord = %+v", r)
	}

	// A true v0 frame replays too, with the epoch reconstructed by
	// counting mutations instead of read from the extension.
	rv0, _, err := DecodeRecord(v0Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if rv0.Epoch != 0 || rv0.Entry != e {
		t.Fatalf("v0 DecodeRecord = %+v", rv0)
	}
	m, seq, consumed := Replay(v0Bytes)
	if consumed != len(v0Bytes) || seq != 9 {
		t.Fatalf("v0 replay consumed %d seq %d", consumed, seq)
	}
	if m.Epoch() != 1 {
		t.Fatalf("v0 replay epoch %d, want 1 (counted)", m.Epoch())
	}
	if got, _ := m.Entry(11); got != (Entry{ID: 11, Weight: 32, Addr: 0xFACE}) {
		t.Fatalf("v0 replay entry %+v", got)
	}

	// Mixed stream: a v0 prefix followed by v1 records converges on the
	// v1 writer's extension epoch.
	mixed := append([]byte(nil), v0Bytes...)
	rec2, err := AppendRecord(nil, &Record{Type: RecAddr, Seq: 10, Epoch: 80, Entry: Entry{ID: 11, Addr: 0xB00}})
	if err != nil {
		t.Fatal(err)
	}
	mixed = append(mixed, rec2...)
	m2, seq2, consumed2 := Replay(mixed)
	if consumed2 != len(mixed) || seq2 != 10 {
		t.Fatalf("mixed replay consumed %d/%d seq %d", consumed2, len(mixed), seq2)
	}
	if m2.Epoch() != 80 {
		t.Fatalf("mixed replay epoch %d, want the v1 writer's 80", m2.Epoch())
	}
	if got, _ := m2.Entry(11); got.Addr != 0xB00 {
		t.Fatalf("mixed replay entry %+v", got)
	}
}

func TestRecordCodecCanonical(t *testing.T) {
	snap := Restore(42, []Entry{{ID: 1, Weight: 8}, {ID: 2, Weight: 8, Addr: 5}}).Encode(nil)
	for _, r := range []Record{
		{Type: RecAdd, Seq: 1, Epoch: 1, Entry: Entry{ID: 4, Weight: 64}},
		{Type: RecRemove, Seq: 2, Epoch: 2, Entry: Entry{ID: 4, Weight: 64}},
		{Type: RecAddr, Seq: 3, Epoch: 3, Entry: Entry{ID: 1, Addr: 0xF00}},
		{Type: RecSnap, Seq: 4, Epoch: 42, Snap: snap},
	} {
		framed, err := AppendRecord(nil, &r)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeRecord(framed)
		if err != nil {
			t.Fatalf("record %d: %v", r.Type, err)
		}
		if n != len(framed) {
			t.Fatalf("record %d: consumed %d of %d", r.Type, n, len(framed))
		}
		re, err := AppendRecord(nil, &got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, framed) {
			t.Fatalf("record %d: decode/re-encode not canonical", r.Type)
		}
	}
	if _, err := AppendRecord(nil, &Record{Type: 99}); err == nil {
		t.Fatal("unknown record type encoded")
	}
}
