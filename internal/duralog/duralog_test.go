package duralog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendN(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for i := from; i <= to; i++ {
		seq, err := l.Append(0x02, []byte(fmt.Sprintf("msg-%04d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != i {
			t.Fatalf("append assigned seq %d, want %d", seq, i)
		}
	}
}

func collect(t *testing.T, l *Log, from uint64) []uint64 {
	t.Helper()
	var seqs []uint64
	err := l.Replay(from, func(seq uint64, flags uint8, payload []byte) error {
		if string(payload) != fmt.Sprintf("msg-%04d", seq) {
			t.Fatalf("seq %d payload %q", seq, payload)
		}
		if flags != 0x02 {
			t.Fatalf("seq %d flags %#x", seq, flags)
		}
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("replay from %d: %v", from, err)
	}
	return seqs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 50)
	seqs := collect(t, l, 17)
	if len(seqs) != 34 || seqs[0] != 17 || seqs[len(seqs)-1] != 50 {
		t.Fatalf("replay from 17: got %d seqs [%d..%d]", len(seqs), seqs[0], seqs[len(seqs)-1])
	}
	// The tiny segment size must have forced rotations; every segment
	// still replays in order.
	if h := l.Health(); h.Segments < 3 {
		t.Fatalf("segments = %d, want rotation to have happened", h.Segments)
	}
	all := collect(t, l, 0)
	if len(all) != 50 {
		t.Fatalf("full replay: %d seqs", len(all))
	}
}

func TestReopenRecoversHeadAndCursors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 30)
	if err := l.Ack("analytics", 12); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Head() != 30 {
		t.Fatalf("recovered head %d, want 30", l2.Head())
	}
	if cur, ok := l2.Cursor("analytics"); !ok || cur != 12 {
		t.Fatalf("recovered cursor %d (ok=%v), want 12", cur, ok)
	}
	// Appends continue the sequence.
	appendN(t, l2, 31, 35)
	seqs := collect(t, l2, 13)
	if len(seqs) != 23 || seqs[0] != 13 || seqs[len(seqs)-1] != 35 {
		t.Fatalf("post-reopen replay: %d seqs [%d..%d]", len(seqs), seqs[0], seqs[len(seqs)-1])
	}
}

// TestTornSegmentRecovery cuts the last segment mid-record (a crash
// mid-write) and verifies recovery truncates exactly at the durable
// prefix, like the registrystore WAL.
func TestTornSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 10)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: no Close (no cursor checkpoint), tear the
	// tail of the only segment by 5 bytes — the last record is torn.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	if err := os.Truncate(segs[0].path, segs[0].size-5); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open torn log: %v", err)
	}
	defer l2.Close()
	if l2.Head() != 9 {
		t.Fatalf("recovered head %d, want 9 (torn record 10 dropped)", l2.Head())
	}
	seqs := collect(t, l2, 1)
	if len(seqs) != 9 {
		t.Fatalf("replay after torn recovery: %d seqs", len(seqs))
	}
	// The sequence continues where durable history ended: record 10 was
	// never acknowledged durable, so its number is reused.
	appendN(t, l2, 10, 12)
	if got := collect(t, l2, 1); len(got) != 12 {
		t.Fatalf("replay after re-append: %d seqs", len(got))
	}
}

// TestCorruptMidSegmentDropsTail flips a byte mid-segment: recovery
// keeps the prefix and drops everything after, including later
// segments.
func TestCorruptMidSegmentDropsTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove the cursor checkpoint so head is recovered from segments
	// alone, then scribble into the second segment.
	os.Remove(filepath.Join(dir, cursorsName))
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (%v)", len(segs), err)
	}
	buf, err := os.ReadFile(segs[1].path)
	if err != nil {
		t.Fatal(err)
	}
	buf[4] ^= 0xFF
	if err := os.WriteFile(segs[1].path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{NoSync: true, SegmentBytes: 200})
	if err != nil {
		t.Fatalf("open corrupt log: %v", err)
	}
	defer l2.Close()
	if l2.Head() != segs[1].first-1 {
		t.Fatalf("recovered head %d, want %d", l2.Head(), segs[1].first-1)
	}
	for _, s := range segs[2:] {
		if _, err := os.Stat(s.path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("segment %s not dropped after corruption point", s.path)
		}
	}
}

// TestAckIdempotency: duplicate, reordered, and over-head acks all
// merge to the same cursor.
func TestAckIdempotency(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 20)
	for _, seq := range []uint64{5, 17, 9, 17, 3, 999} { // 999 clamps to head
		if err := l.Ack("app", seq); err != nil {
			t.Fatal(err)
		}
	}
	if cur, _ := l.Cursor("app"); cur != 20 {
		t.Fatalf("cursor %d, want 20 (999 clamped to head)", cur)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The in-segment ack records replay idempotently too.
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if cur, _ := l2.Cursor("app"); cur != 20 {
		t.Fatalf("recovered cursor %d, want 20", cur)
	}
}

func TestRetention(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 60)
	h := l.Health()
	if h.Segments < 4 {
		t.Fatalf("want >=4 segments, got %d", h.Segments)
	}
	// No cursors: nothing voluntarily deletable.
	if n, err := l.Retain(); err != nil || n != 0 {
		t.Fatalf("retain with no cursors removed %d (%v)", n, err)
	}
	if err := l.Ack("app", 30); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Retain(); err != nil {
		t.Fatal(err)
	}
	h = l.Health()
	if h.First == 1 {
		t.Fatal("retention removed nothing despite acked prefix")
	}
	if h.First > 31 {
		t.Fatalf("retention deleted past the cursor: first=%d", h.First)
	}
	if h.Breached || h.RetentionBreaches != 0 {
		t.Fatalf("voluntary retention flagged a breach: %+v", h)
	}
	// Replay from the cursor still works.
	var n int
	if err := l.Replay(31, func(seq uint64, _ uint8, _ []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("replay after retention: %d payloads, want 30", n)
	}
}

func TestRetentionBreach(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true, SegmentBytes: 200, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 60)
	if err := l.Ack("slow", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Retain(); err != nil {
		t.Fatal(err)
	}
	h := l.Health()
	if h.Segments > 2 {
		t.Fatalf("MaxSegments not enforced: %d segments", h.Segments)
	}
	if !h.Breached || h.RetentionBreaches == 0 {
		t.Fatalf("forced deletion past a live cursor not flagged: %+v", h)
	}
}

func TestReplayStop(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 10)
	n := 0
	err = l.Replay(1, func(seq uint64, _ uint8, _ []byte) error {
		n++
		if seq == 4 {
			return ErrStop
		}
		return nil
	})
	if err != nil || n != 4 {
		t.Fatalf("ErrStop: err=%v n=%d", err, n)
	}
	boom := errors.New("boom")
	if err := l.Replay(1, func(uint64, uint8, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

func TestScanDir(t *testing.T) {
	root := t.TempDir()
	for _, topic := range []string{"orders", "tele/metry"} {
		l, err := Open(TopicDir(root, topic), Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 1, 5)
		if err := l.Ack("app", 2); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	hs, err := ScanDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 {
		t.Fatalf("scanned %d topics, want 2", len(hs))
	}
	for _, h := range hs {
		if h.Head != 5 || h.Cursors["app"] != 2 || h.MaxLag != 3 {
			t.Fatalf("topic %q health %+v", h.Topic, h)
		}
	}
	if hs[0].Topic != "orders" || hs[1].Topic != "tele/metry" {
		t.Fatalf("topics %q %q (escaping broken?)", hs[0].Topic, hs[1].Topic)
	}
	// Scanning must not have truncated or removed anything.
	l, err := Open(TopicDir(root, "orders"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Head() != 5 {
		t.Fatalf("head after scan = %d", l.Head())
	}
}

func TestPayloadTooLarge(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(0, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize append: %v", err)
	}
	if _, err := l.Append(0, make([]byte, MaxPayload)); err != nil {
		t.Fatalf("max-size append: %v", err)
	}
}

// TestZeroCursorSurvivesRecovery: a subscriber registered before it
// has acknowledged anything is a seq-0 cursor. It must survive both
// recovery paths (the checkpoint file and in-segment cursor records) —
// losing it would let Retain delete history the subscriber still
// needs, and hide the worst laggard from the health sweep.
func TestZeroCursorSurvivesRecovery(t *testing.T) {
	dir := TopicDir(t.TempDir(), "orders")

	// Registered on an empty log: only the checkpoint carries it.
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 256, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Ack("stuck", 1); err != nil { // clamped to head 0
		t.Fatal(err)
	}
	appendN(t, l, 1, 40)
	if _, err := l.Retain(); err != nil {
		t.Fatal(err)
	}
	h := l.Health()
	if !h.Breached {
		t.Fatalf("forced retention past the zero cursor: health %+v", h)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint path: reopen sees the cursor and the breach.
	l2, err := Open(dir, Options{NoSync: true, SegmentBytes: 256, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cur, ok := l2.Cursor("stuck"); !ok || cur != 0 {
		t.Fatalf("reopened cursor %d (ok=%v), want 0 registered", cur, ok)
	}
	if h := l2.Health(); !h.Breached || h.LaggingSub != "stuck" || h.MaxLag != 40 {
		t.Fatalf("reopened health %+v, want breached with stuck lagging 40", h)
	}

	// In-segment record path: register another zero cursor while a
	// segment is open, kill the checkpoint, and recover from records.
	appendN(t, l2, 41, 42)
	if err := l2.Ack("stuck2", 0); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "cursors.dat")); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{NoSync: true, SegmentBytes: 256, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if cur, ok := l3.Cursor("stuck2"); !ok || cur != 0 {
		t.Fatalf("record-recovered cursor %d (ok=%v), want 0 registered", cur, ok)
	}

	// The read-only sweep reports the breach too.
	hs, err := ScanDir(filepath.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 || !hs[0].Breached || hs[0].Cursors["stuck2"] != 0 {
		t.Fatalf("scan health %+v, want breached with stuck2 at 0", hs)
	}
}
