// Package duralog is the opt-in per-topic durable payload log behind
// FLIPC's replay cursors. The optimistic protocol never blocks a send
// and counts every loss; duralog adds the complementary guarantee for
// topics that opt in: every published payload is journaled off the hot
// path, and a subscriber that disconnected, was quarantine-evicted, or
// stalled past its credit window replays the range it lost from its
// acknowledged cursor instead of keeping only the count.
//
// The storage discipline is internal/registrystore's, applied to
// payload frames through the shared internal/recio codec:
//
//   - CRC-framed records with torn-tail truncation: a payload cut
//     short by a crash mid-write was never acknowledged durable, so
//     recovery drops it exactly;
//   - fsync by record class: payload appends group-commit every
//     SyncEvery records (a crash loses at most the unsynced window —
//     bounded, counted, and no worse than the optimistic baseline),
//     while cursor acks are never synced: a lost ack re-merges from
//     the next in-band acknowledgement, and cursors only move forward;
//   - segmented retention: the log rotates fixed-size segments named
//     by their first payload sequence, and Retain deletes whole
//     segments once every registered cursor has passed them (with a
//     MaxSegments hard cap that force-drops the oldest segment and
//     counts the cursors it strands — a retention breach, surfaced in
//     Health and /healthz, never silent).
//
// Sequences are contiguous from 1 per topic. Cursors are keyed by a
// stable subscriber name (addresses change across rebinds and
// quarantine recoveries; the replay position must not) and are
// max-merged, so duplicate or reordered acks are idempotent.
package duralog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"flipc/internal/recio"
	"flipc/internal/wire"
)

// Record types in a segment file.
const (
	// recPayload carries one published payload: Frame.Seq is the
	// payload sequence (contiguous from 1), body = flags(1) | payload.
	// The flags byte preserves the publish-time wire flags so replayed
	// frames re-send faithfully.
	recPayload = 1
	// recCursor journals a cursor ack in-line: Frame.Seq is the acked
	// payload sequence, body = subscriber name. Unsynced (see package
	// comment).
	recCursor = 2
)

// cursorsMagic marks a cursors.dat file ("FLDC").
const cursorsMagic = 0x464C4443

// cursorsVersion is the cursors.dat format version.
const cursorsVersion = 1

// cursorsName is the cursor checkpoint file inside a log directory.
const cursorsName = "cursors.dat"

// segPrefix and segSuffix frame segment file names; the middle is the
// first payload sequence in the segment, hex, zero-padded so the
// lexical order is the sequence order.
const (
	segPrefix = "seg-"
	segSuffix = ".log"
)

// MaxPayload is the largest payload one record can carry (recio body
// cap minus the flags byte).
const MaxPayload = 0xFFFF - 1 - 2 // recio v1 body cap - flags byte - ext length

// ErrStop is returned by a Replay callback to end the replay early
// without error.
var ErrStop = errors.New("duralog: stop replay")

// ErrTooLarge reports a payload that cannot fit one record.
var ErrTooLarge = errors.New("duralog: payload too large")

// Options tunes a log.
type Options struct {
	// SegmentBytes is the rotation threshold (default 1 MiB).
	SegmentBytes int
	// SyncEvery is the payload group-commit interval: every Nth payload
	// append flushes and fsyncs (default 256; 1 syncs every append).
	SyncEvery int
	// NoSync disables fsync entirely (tests and benchmarks).
	NoSync bool
	// MaxSegments caps retained segments; 0 means unbounded. When the
	// cap forces out a segment some cursor still needs, the deletion is
	// counted as a retention breach, never silent.
	MaxSegments int
}

func (o *Options) applyDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 256
	}
}

// idxEvery is the sparse-index stride: one (sequence, offset) entry per
// this many payload records. Replay seeks to the nearest indexed record
// at or below its resume point instead of scanning the segment from the
// start — without it a catch-up pump behind a live publisher re-reads
// and re-checksums the whole segment on every call, O(head) work per
// publish.
const idxEvery = 64

// idxEntry is one sparse-index point: the byte offset of a payload
// record's start within its segment.
type idxEntry struct {
	seq uint64
	off int64
}

// segment is one on-disk log segment.
type segment struct {
	first uint64 // first payload sequence stored (names the file)
	path  string
	size  int64
	index []idxEntry // sparse payload index, ascending by seq
}

// startOff returns the byte offset Replay should start reading this
// segment from to see every payload record with sequence >= from: the
// nearest indexed record at or below from (0 when from predates the
// segment or no index entry qualifies).
func (s *segment) startOff(from uint64) int64 {
	off := int64(0)
	for _, e := range s.index {
		if e.seq > from {
			break
		}
		off = e.off
	}
	return off
}

// Log is one topic's durable payload log with its replay cursors.
// Safe for concurrent use.
type Log struct {
	mu  sync.Mutex
	dir string
	opt Options

	segs     []segment // sorted by first; the last is the active segment
	active   *os.File  // nil until the first append after open/rotation
	w        *bufio.Writer
	wbuf     int // bytes buffered in w (pending flush), mirrored for size math
	segCount int // payload records in the active segment (index stride)

	head    uint64 // last appended payload sequence (0 = none ever)
	first   uint64 // first retained payload sequence (head+1 when empty)
	cursors map[string]uint64

	unsynced int    // payload appends since the last fsync
	breaches uint64 // forced retention deletions that stranded a cursor
	appended uint64 // payloads appended this incarnation
	acked    uint64 // cursor advances this incarnation
	err      error  // sticky I/O error; surfaced in Health
	enc      []byte
}

// Health is a log's operator-facing state.
type Health struct {
	// Head is the last appended payload sequence.
	Head uint64
	// First is the first retained payload sequence.
	First uint64
	// Depth is the number of retained payloads (Head - First + 1).
	Depth uint64
	// Segments is the number of on-disk segments.
	Segments int
	// Cursors maps subscriber name to acknowledged sequence.
	Cursors map[string]uint64
	// MaxLag is Head minus the lowest cursor (0 with no cursors).
	MaxLag uint64
	// LaggingSub names the subscriber at MaxLag.
	LaggingSub string
	// Breached reports a cursor lagging past the retention horizon:
	// its next needed sequence was force-deleted, so a resume from it
	// starts at First with a counted gap.
	Breached bool
	// RetentionBreaches counts forced segment deletions that stranded
	// at least one cursor.
	RetentionBreaches uint64
	// Err is the sticky I/O error, if any.
	Err error
}

// TopicDir maps a topic name to its log directory under root. Names
// are path-escaped so any registry-legal topic name is a legal
// directory.
func TopicDir(root, topic string) string {
	return filepath.Join(root, url.PathEscape(topic))
}

// Open opens (creating if necessary) the log in dir, recovering head,
// retained segments, and cursors. Torn segment tails are truncated —
// a record cut short by a crash mid-write was never acknowledged
// durable — and any segments after a torn or corrupt one are dropped,
// since their contents were written after the failure point.
func Open(dir string, opt Options) (*Log, error) {
	opt.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("duralog: %w", err)
	}
	l := &Log{dir: dir, opt: opt, cursors: make(map[string]uint64)}

	head, err := readCursors(filepath.Join(dir, cursorsName), l.cursors)
	if err != nil {
		return nil, err
	}
	l.head = head

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i := range segs {
		buf, err := os.ReadFile(segs[i].path)
		if err != nil {
			return nil, fmt.Errorf("duralog: %w", err)
		}
		consumed, err := l.replaySegment(buf, &segs[i])
		if err != nil {
			return nil, err
		}
		if consumed < len(buf) || consumed == 0 {
			// Torn or corrupt: this incarnation ends here. Truncate the
			// durable prefix and drop every later segment (written after
			// the failure point, so nothing in them was acknowledged in
			// order).
			if consumed == 0 && i > 0 {
				os.Remove(segs[i].path)
			} else {
				if err := os.Truncate(segs[i].path, int64(consumed)); err != nil {
					return nil, fmt.Errorf("duralog: truncate torn segment: %w", err)
				}
				segs[i].size = int64(consumed)
				l.segs = append(l.segs, segs[i])
			}
			for _, s := range segs[i+1:] {
				os.Remove(s.path)
			}
			break
		}
		l.segs = append(l.segs, segs[i])
	}
	if len(l.segs) > 0 {
		l.first = l.segs[0].first
	} else {
		l.first = l.head + 1
	}
	// Cursors never exceed head (acks are clamped on the way in; a
	// stale checkpoint cannot resurrect one above the recovered head).
	for s, c := range l.cursors {
		if c > l.head {
			l.cursors[s] = l.head
		}
	}
	return l, nil
}

// replaySegment scans one segment's bytes into the log's recovered
// state — rebuilding its sparse payload index and leaving l.segCount
// at the segment's payload count, so appends to a reopened active
// segment continue the index stride — and returns the durable prefix
// length.
func (l *Log) replaySegment(buf []byte, s *segment) (int, error) {
	l.segCount = 0
	var off int64
	consumed, err := recio.Scan(buf, func(f recio.Frame, size int) error {
		rec := off
		off += int64(size)
		switch f.Type {
		case recPayload:
			if len(f.Payload) < 1 {
				return fmt.Errorf("%w: payload record %d bytes", recio.ErrCorrupt, len(f.Payload))
			}
			if f.Seq > l.head {
				l.head = f.Seq
			}
			if l.segCount%idxEvery == 0 {
				s.index = append(s.index, idxEntry{seq: f.Seq, off: rec})
			}
			l.segCount++
		case recCursor:
			sub := string(f.Payload)
			if sub == "" {
				break
			}
			// Insert-if-absent (see readCursors): seq 0 still
			// registers the subscriber for retention and health.
			if cur, ok := l.cursors[sub]; !ok || f.Seq > cur {
				l.cursors[sub] = f.Seq
			}
		}
		return nil
	})
	if err != nil {
		return consumed, fmt.Errorf("duralog: %w", err)
	}
	return consumed, nil
}

// listSegments returns dir's segments sorted by first sequence.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("duralog: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 16, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("duralog: %w", err)
		}
		segs = append(segs, segment{first: first, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

// Append journals one payload with its publish-time wire flags,
// returning the assigned sequence. The write lands in the group-commit
// buffer; every SyncEvery-th append flushes and fsyncs.
func (l *Log) Append(flags uint8, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	seq := l.head + 1
	l.enc = l.enc[:0]
	l.enc = append(l.enc, flags)
	l.enc = append(l.enc, payload...)
	body := l.enc
	framed, err := recio.Append(nil, &recio.Frame{Type: recPayload, Ver: recio.V1, Seq: seq, Payload: body})
	if err != nil {
		return 0, err
	}
	if err := l.writeLocked(framed, seq); err != nil {
		return 0, err
	}
	l.head = seq
	l.appended++
	l.unsynced++
	if l.unsynced >= l.opt.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Ack advances sub's cursor to seq (max-merged, clamped to head) and
// journals the advance unsynced. Idempotent: duplicate and reordered
// acks are no-ops.
func (l *Log) Ack(sub string, seq uint64) error {
	if sub == "" || len(sub) > 255 {
		return fmt.Errorf("duralog: bad subscriber name length %d", len(sub))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if seq > l.head {
		seq = l.head
	}
	if cur, ok := l.cursors[sub]; ok && cur >= seq {
		return nil
	}
	l.cursors[sub] = seq
	l.acked++
	framed, err := recio.Append(nil, &recio.Frame{Type: recCursor, Ver: recio.V1, Seq: seq, Payload: []byte(sub)})
	if err != nil {
		return err
	}
	// Cursor records ride the current segment only when one is open:
	// an ack on an empty log has nothing to recover from anyway, and
	// the checkpoint file carries it across Close.
	if l.active != nil {
		return l.writeRawLocked(framed)
	}
	return nil
}

// writeLocked writes one framed payload record, rotating first if the
// active segment is full (or absent). seq names a new segment — the
// invariant is that every segment starts with the payload record it is
// named after. Caller holds l.mu.
func (l *Log) writeLocked(framed []byte, seq uint64) error {
	if l.active == nil || int(l.segs[len(l.segs)-1].size)+l.wbuf >= l.opt.SegmentBytes {
		if err := l.rotateLocked(seq); err != nil {
			return err
		}
	}
	if l.segCount%idxEvery == 0 {
		s := &l.segs[len(l.segs)-1]
		s.index = append(s.index, idxEntry{seq: seq, off: s.size + int64(l.wbuf)})
	}
	l.segCount++
	return l.writeRawLocked(framed)
}

// writeRawLocked appends bytes to the active segment's buffer. Caller
// holds l.mu and has ensured a segment is open.
func (l *Log) writeRawLocked(b []byte) error {
	if _, err := l.w.Write(b); err != nil {
		l.err = fmt.Errorf("duralog: segment write: %w", err)
		return l.err
	}
	l.wbuf += len(b)
	return nil
}

// rotateLocked seals the active segment (flush + sync: rotation is a
// durability boundary) and opens a new one named first. Caller holds
// l.mu.
func (l *Log) rotateLocked(first uint64) error {
	if l.active != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			l.err = fmt.Errorf("duralog: segment close: %w", err)
			return l.err
		}
		l.active, l.w = nil, nil
	}
	path := filepath.Join(l.dir, segName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		l.err = fmt.Errorf("duralog: %w", err)
		return l.err
	}
	l.active = f
	l.w = bufio.NewWriter(f)
	l.wbuf = 0
	l.segCount = 0
	l.segs = append(l.segs, segment{first: first, path: path})
	if len(l.segs) == 1 {
		l.first = first
	}
	return nil
}

// syncLocked flushes the group-commit buffer and fsyncs the active
// segment. Caller holds l.mu.
func (l *Log) syncLocked() error {
	if l.active == nil {
		return nil
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.opt.NoSync {
		if err := l.active.Sync(); err != nil {
			l.err = fmt.Errorf("duralog: segment sync: %w", err)
			return l.err
		}
	}
	l.unsynced = 0
	return nil
}

// flushLocked moves buffered bytes to the OS, updating the active
// segment's size. Caller holds l.mu.
func (l *Log) flushLocked() error {
	if l.w == nil || l.wbuf == 0 {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("duralog: segment flush: %w", err)
		return l.err
	}
	l.segs[len(l.segs)-1].size += int64(l.wbuf)
	l.wbuf = 0
	return nil
}

// Sync forces a group commit (flush + fsync) immediately.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

// Cursor returns sub's acknowledged sequence; ok reports whether sub
// has ever acked.
func (l *Log) Cursor(sub string) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, ok := l.cursors[sub]
	return seq, ok
}

// Head returns the last appended payload sequence.
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// First returns the first retained payload sequence.
func (l *Log) First() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// Replay streams retained payloads with sequence >= from, in order,
// to fn. Returning ErrStop from fn ends the replay without error; any
// other error aborts and is returned. Replay flushes the group-commit
// buffer first so the caller always sees every append that returned.
func (l *Log) Replay(from uint64, fn func(seq uint64, flags uint8, payload []byte) error) error {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()

	// Segments are immutable once rotated and append-only while
	// active, so reading outside the lock races only with appends
	// beyond the flushed size captured above — which this replay does
	// not promise to include.
	for _, s := range segs {
		if next := segAfter(segs, s.first); next != 0 && next <= from {
			continue // wholly below the resume point
		}
		// Seek via the sparse index: start at the nearest indexed record
		// at or below the resume point instead of re-scanning (and
		// re-checksumming) the whole segment — records start at clean
		// frame boundaries, so a suffix scans like a full segment.
		off := s.startOff(from)
		buf := make([]byte, s.size-off)
		f, err := os.Open(s.path)
		if err != nil {
			return fmt.Errorf("duralog: %w", err)
		}
		_, err = f.ReadAt(buf, off)
		f.Close()
		if err != nil && len(buf) > 0 {
			return fmt.Errorf("duralog: read segment: %w", err)
		}
		_, err = recio.Scan(buf, func(fr recio.Frame, _ int) error {
			if fr.Type != recPayload || fr.Seq < from || len(fr.Payload) < 1 {
				return nil
			}
			return fn(fr.Seq, fr.Payload[0], fr.Payload[1:])
		})
		if errors.Is(err, ErrStop) {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// segAfter returns the first sequence of the segment following the one
// starting at first, or 0 if it is the last.
func segAfter(segs []segment, first uint64) uint64 {
	for i, s := range segs {
		if s.first == first && i+1 < len(segs) {
			return segs[i+1].first
		}
	}
	return 0
}

// Retain applies the retention policy: whole segments every registered
// cursor has fully acknowledged are deleted, and if MaxSegments is set,
// oldest segments beyond the cap are force-deleted even when a cursor
// still needs them (counted as retention breaches). The active segment
// is never deleted. Returns the number of segments removed.
func (l *Log) Retain() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	// The lowest next-needed sequence across cursors gates voluntary
	// deletion. With no cursors nothing is voluntarily deletable: a
	// durable topic with no acked subscriber yet must keep everything
	// (MaxSegments still bounds the disk).
	minNeeded := uint64(0)
	hasCursor := false
	for _, c := range l.cursors {
		if !hasCursor || c+1 < minNeeded {
			minNeeded = c + 1
		}
		hasCursor = true
	}
	removed := 0
	for len(l.segs) > 1 {
		next := l.segs[1].first // first seq the next segment holds
		forced := l.opt.MaxSegments > 0 && len(l.segs) > l.opt.MaxSegments
		if !(hasCursor && next <= minNeeded) && !forced {
			break
		}
		if forced && (!hasCursor || next > minNeeded) {
			l.breaches++
		}
		if err := l.writeCursorsLocked(); err != nil {
			return removed, err
		}
		if err := os.Remove(l.segs[0].path); err != nil {
			l.err = fmt.Errorf("duralog: retention remove: %w", err)
			return removed, l.err
		}
		l.segs = l.segs[1:]
		l.first = l.segs[0].first
		removed++
	}
	return removed, nil
}

// Depth returns the number of retained payloads.
func (l *Log) Depth() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.head+1 < l.first {
		return 0
	}
	return l.head + 1 - l.first
}

// Health returns the log's operator-facing state.
func (l *Log) Health() Health {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := Health{
		Head:              l.head,
		First:             l.first,
		Segments:          len(l.segs),
		Cursors:           make(map[string]uint64, len(l.cursors)),
		RetentionBreaches: l.breaches,
		Err:               l.err,
	}
	if l.head+1 > l.first {
		h.Depth = l.head + 1 - l.first
	}
	for s, c := range l.cursors {
		h.Cursors[s] = c
		if lag := l.head - c; lag >= h.MaxLag && (h.LaggingSub == "" || lag > h.MaxLag || s < h.LaggingSub) {
			h.MaxLag = lag
			h.LaggingSub = s
		}
		if c+1 < l.first {
			h.Breached = true
		}
	}
	return h
}

// Close checkpoints the cursors, seals the active segment, and closes
// the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	if l.active != nil {
		if err := l.syncLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := l.active.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		l.active, l.w = nil, nil
	}
	if err := l.writeCursorsLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// writeCursorsLocked checkpoints head and the cursor map (atomic tmp +
// rename). Caller holds l.mu.
func (l *Log) writeCursorsLocked() error {
	var b []byte
	var hdr [17]byte
	binary.BigEndian.PutUint32(hdr[0:4], cursorsMagic)
	hdr[4] = cursorsVersion
	binary.BigEndian.PutUint64(hdr[5:13], l.head)
	binary.BigEndian.PutUint32(hdr[13:17], uint32(len(l.cursors)))
	b = append(b, hdr[:]...)
	subs := make([]string, 0, len(l.cursors))
	for s := range l.cursors {
		subs = append(subs, s)
	}
	sort.Strings(subs)
	var seq8 [8]byte
	for _, s := range subs {
		b = append(b, byte(len(s)))
		b = append(b, s...)
		binary.BigEndian.PutUint64(seq8[:], l.cursors[s])
		b = append(b, seq8[:]...)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], wire.Checksum(b))
	b = append(b, crc[:]...)

	path := filepath.Join(l.dir, cursorsName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		l.err = fmt.Errorf("duralog: %w", err)
		return l.err
	}
	if err := os.Rename(tmp, path); err != nil {
		l.err = fmt.Errorf("duralog: %w", err)
		return l.err
	}
	return nil
}

// readCursors loads a cursor checkpoint into cursors, returning the
// checkpointed head. A missing file is an empty checkpoint; a corrupt
// one is ignored the same way — the checkpoint is an optimization over
// the in-segment cursor records, which recovery max-merges on top.
func readCursors(path string, cursors map[string]uint64) (uint64, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("duralog: %w", err)
	}
	if len(b) < 21 {
		return 0, nil
	}
	body, crc := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if wire.Checksum(body) != crc ||
		binary.BigEndian.Uint32(body[0:4]) != cursorsMagic || body[4] != cursorsVersion {
		return 0, nil
	}
	head := binary.BigEndian.Uint64(body[5:13])
	n := int(binary.BigEndian.Uint32(body[13:17]))
	off := 17
	for i := 0; i < n; i++ {
		if off+1 > len(body) {
			return 0, nil
		}
		subLen := int(body[off])
		off++
		if subLen == 0 || off+subLen+8 > len(body) {
			return 0, nil
		}
		sub := string(body[off : off+subLen])
		seq := binary.BigEndian.Uint64(body[off+subLen : off+subLen+8])
		// Insert-if-absent, not just max-merge: a seq-0 cursor is a
		// registered subscriber that has acknowledged nothing yet, and
		// dropping it would let Retain delete the history it still
		// needs (and hide the worst laggard from the health sweep).
		if cur, ok := cursors[sub]; !ok || seq > cur {
			cursors[sub] = seq
		}
		off += subLen + 8
	}
	return head, nil
}

// TopicHealth is one topic's health as seen by ScanDir.
type TopicHealth struct {
	Topic string
	Health
}

// ScanDir reads every topic log under root without opening (and
// therefore without truncating) it — the daemon's read-only health
// sweep over a durable-log root. Torn tails are simply not counted.
func ScanDir(root string) ([]TopicHealth, error) {
	entries, err := os.ReadDir(root)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("duralog: %w", err)
	}
	var out []TopicHealth
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		topic, err := url.PathUnescape(e.Name())
		if err != nil {
			topic = e.Name()
		}
		dir := filepath.Join(root, e.Name())
		scan := &Log{dir: dir, cursors: make(map[string]uint64)}
		head, err := readCursors(filepath.Join(dir, cursorsName), scan.cursors)
		if err != nil {
			return nil, err
		}
		scan.head = head
		segs, err := listSegments(dir)
		if err != nil {
			return nil, err
		}
		for i := range segs {
			buf, err := os.ReadFile(segs[i].path)
			if err != nil {
				return nil, fmt.Errorf("duralog: %w", err)
			}
			consumed, err := scan.replaySegment(buf, &segs[i])
			if err != nil {
				return nil, err
			}
			scan.segs = append(scan.segs, segs[i])
			if consumed < len(buf) {
				break
			}
		}
		if len(scan.segs) > 0 {
			scan.first = scan.segs[0].first
		} else {
			scan.first = scan.head + 1
		}
		for s, c := range scan.cursors {
			if c > scan.head {
				scan.cursors[s] = scan.head
			}
		}
		out = append(out, TopicHealth{Topic: topic, Health: scan.Health()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out, nil
}
