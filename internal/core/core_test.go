package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flipc/internal/engine"
	"flipc/internal/interconnect"
	"flipc/internal/wire"
)

// newCluster builds n domains on a shared in-process fabric.
func newCluster(t *testing.T, n int, cfg Config) []*Domain {
	t.Helper()
	fabric := interconnect.NewFabric(256)
	doms := make([]*Domain, n)
	for i := range doms {
		c := cfg
		c.Node = wire.NodeID(i)
		if c.MessageSize == 0 {
			c.MessageSize = 64
		}
		if c.NumBuffers == 0 {
			c.NumBuffers = 32
		}
		tr, err := fabric.Attach(wire.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDomain(c, tr)
		if err != nil {
			t.Fatal(err)
		}
		doms[i] = d
		t.Cleanup(d.Close)
	}
	return doms
}

// pump drives all domains until quiescent (manual mode).
func pump(doms ...*Domain) {
	for pass := 0; pass < 100; pass++ {
		work := false
		for _, d := range doms {
			if d.Poll() {
				work = true
			}
		}
		if !work {
			return
		}
	}
}

func TestDomainBasics(t *testing.T) {
	doms := newCluster(t, 1, Config{})
	d := doms[0]
	if d.MaxPayload() != 56 {
		t.Fatalf("MaxPayload = %d", d.MaxPayload())
	}
	if d.Buffer() == nil || d.Engine() == nil || d.Kernel() == nil {
		t.Fatal("nil accessors")
	}
}

func TestAllocFreeBuffer(t *testing.T) {
	doms := newCluster(t, 1, Config{NumBuffers: 2})
	d := doms[0]
	m1, err := d.AllocBuffer()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := d.AllocBuffer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocBuffer(); err == nil {
		t.Fatal("buffer exhaustion not reported")
	}
	if err := d.FreeBuffer(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocBuffer(); err != nil {
		t.Fatal("alloc after free failed")
	}
	if err := d.FreeBuffer(nil); err == nil {
		t.Fatal("FreeBuffer(nil) accepted")
	}
	_ = m2
}

func TestFiveStepTransfer(t *testing.T) {
	doms := newCluster(t, 2, Config{Engine: engine.Config{ValidityChecks: true}})
	a, b := doms[0], doms[1]
	sep, err := a.NewSendEndpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.NewRecvEndpoint(4)
	if err != nil {
		t.Fatal(err)
	}

	// Step 1: receiver posts a buffer.
	rb, _ := b.AllocBuffer()
	if err := rep.Post(rb); err != nil {
		t.Fatal(err)
	}
	// Step 2: sender queues a message.
	sb, _ := a.AllocBuffer()
	n := copy(sb.Payload(), "event: contact detected")
	if err := sep.Send(sb, rep.Addr(), n); err != nil {
		t.Fatal(err)
	}
	// Step 3: the engines move it.
	pump(a, b)
	// Step 4: receiver removes the message.
	got, ok := rep.Receive()
	if !ok {
		t.Fatal("no message delivered")
	}
	if got.Len() != n || string(got.Payload()[:n]) != "event: contact detected" {
		t.Fatalf("received %d bytes %q", got.Len(), got.Payload()[:got.Len()])
	}
	// Step 5: sender reclaims its buffer.
	back, ok := sep.Acquire()
	if !ok || back.ID() != sb.ID() {
		t.Fatal("sender did not get its buffer back")
	}
	if err := a.FreeBuffer(back); err != nil {
		t.Fatal(err)
	}
	if err := b.FreeBuffer(got); err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(2)
	rep, _ := b.NewRecvEndpoint(2)
	m, _ := a.AllocBuffer()
	if err := rep.Post(m); err == nil {
		t.Fatal("Post of foreign-domain message accepted")
	}
	if err := sep.Post(m); err != ErrWrongType {
		t.Fatalf("Post on send endpoint: %v", err)
	}
	if err := sep.Send(nil, rep.Addr(), 0); err == nil {
		t.Fatal("Send(nil) accepted")
	}
	if err := sep.Send(m, rep.Addr(), 1000); err == nil {
		t.Fatal("oversize send accepted")
	}
	if _, ok := sep.Receive(); ok {
		t.Fatal("Receive on send endpoint returned")
	}
	bm, _ := b.AllocBuffer()
	if err := sep.Send(bm, rep.Addr(), 0); err == nil {
		t.Fatal("foreign-domain message accepted")
	}
}

func TestQueueFull(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(2)
	rep, _ := b.NewRecvEndpoint(2)
	// Without pumping, the queue fills at its depth.
	for i := 0; i < 2; i++ {
		m, _ := a.AllocBuffer()
		if err := sep.Send(m, rep.Addr(), 1); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := a.AllocBuffer()
	if err := sep.Send(m, rep.Addr(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: %v", err)
	}
	// The rejected buffer is still usable.
	pump(a, b)
	sep.Acquire()
	sep.Acquire()
	if err := sep.Send(m, rep.Addr(), 1); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
}

func TestDropsAndReadAndReset(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(8)
	rep, _ := b.NewRecvEndpoint(8)
	for i := 0; i < 3; i++ {
		m, _ := a.AllocBuffer()
		if err := sep.Send(m, rep.Addr(), 1); err != nil {
			t.Fatal(err)
		}
	}
	pump(a, b)
	if got := rep.Drops(); got != 3 {
		t.Fatalf("Drops = %d", got)
	}
	if got := rep.ReadAndResetDrops(); got != 3 {
		t.Fatalf("ReadAndResetDrops = %d", got)
	}
	if got := rep.Drops(); got != 0 {
		t.Fatalf("Drops after reset = %d", got)
	}
}

func TestPerBufferCompletion(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(4)
	rep, _ := b.NewRecvEndpoint(4)
	rb, _ := b.AllocBuffer()
	rep.Post(rb)
	sb, _ := a.AllocBuffer()
	if sb.Done() {
		t.Fatal("fresh buffer Done")
	}
	sep.Send(sb, rep.Addr(), 4)
	pump(a, b)
	if !sb.Done() {
		t.Fatal("sent buffer not Done (per-buffer state field)")
	}
	if sb.Dropped() {
		t.Fatal("successful send marked dropped")
	}
}

func TestLockedVariants(t *testing.T) {
	doms := newCluster(t, 2, Config{NumBuffers: 64})
	a, b := doms[0], doms[1]
	a.Start()
	b.Start()
	sep, _ := a.NewSendEndpoint(16)
	rep, _ := b.NewRecvEndpoint(16)

	// Fill the receive window before any sender starts, or the first
	// burst races the receiver goroutine's startup and is discarded by
	// the optimistic protocol.
	for {
		m, err := b.AllocBuffer()
		if err != nil {
			t.Fatal(err)
		}
		if rep.PostLocked(m) != nil {
			b.FreeBuffer(m)
			break
		}
	}

	// Several threads share one endpoint through the locked interface.
	const senders, per = 4, 10
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var m *Message
				for {
					var err error
					m, err = a.AllocBuffer()
					if err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				m.Payload()[0] = 0x5A
				for {
					err := sep.SendLocked(m, rep.Addr(), 1)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQueueFull) {
						t.Error(err)
						return
					}
					// Reclaim completed sends to make space.
					if back, ok := sep.AcquireLocked(); ok {
						a.FreeBuffer(back)
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	// Receiver: keep buffers posted, count deliveries. Exit early if
	// every outstanding message is accounted for as a drop — waiting
	// out the deadline would only delay the failure report.
	recvDone := make(chan int)
	go func() {
		got := 0
		deadline := time.Now().Add(10 * time.Second)
		for got+int(rep.Drops()) < senders*per && time.Now().Before(deadline) {
			for {
				m, err := b.AllocBuffer()
				if err != nil {
					break
				}
				if rep.PostLocked(m) != nil {
					b.FreeBuffer(m)
					break
				}
			}
			if m, ok := rep.ReceiveLocked(); ok {
				if m.Payload()[0] != 0x5A {
					t.Error("corrupt payload")
				}
				got++
				b.FreeBuffer(m)
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
		recvDone <- got
	}()
	wg.Wait()
	if got := <-recvDone; got != senders*per {
		t.Fatalf("received %d/%d (drop counter: %d)", got, senders*per, rep.Drops())
	}
}

func TestReceiveBlockWakesOnArrival(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	a.Start()
	b.Start()
	sep, _ := a.NewSendEndpoint(4)
	rep, _ := b.NewRecvEndpoint(4)
	rb, _ := b.AllocBuffer()
	rep.Post(rb)

	got := make(chan *Message, 1)
	go func() {
		m, err := rep.ReceiveBlock(5)
		if err != nil {
			t.Error(err)
		}
		got <- m
	}()
	time.Sleep(20 * time.Millisecond) // let the receiver block
	sb, _ := a.AllocBuffer()
	n := copy(sb.Payload(), "wake")
	if err := sep.Send(sb, rep.Addr(), n); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Payload()[:m.Len()]) != "wake" {
			t.Fatalf("payload = %q", m.Payload()[:m.Len()])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked receiver never woke")
	}
}

func TestReceiveBlockWrongType(t *testing.T) {
	doms := newCluster(t, 1, Config{})
	sep, _ := doms[0].NewSendEndpoint(4)
	if _, err := sep.ReceiveBlock(0); err != ErrWrongType {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupReceive(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(8)
	rep1, _ := b.NewRecvEndpoint(4)
	rep2, _ := b.NewRecvEndpoint(4)
	g, err := b.NewGroup(rep1, rep2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Members()) != 2 {
		t.Fatal("members wrong")
	}
	if _, _, ok := g.Receive(); ok {
		t.Fatal("empty group received")
	}
	for _, rep := range []*Endpoint{rep1, rep2} {
		m, _ := b.AllocBuffer()
		rep.Post(m)
	}
	for i, rep := range []*Endpoint{rep2, rep1} {
		m, _ := a.AllocBuffer()
		m.Payload()[0] = byte(i)
		sep.Send(m, rep.Addr(), 1)
	}
	pump(a, b)
	seen := map[byte]*Endpoint{}
	for i := 0; i < 2; i++ {
		m, e, ok := g.Receive()
		if !ok {
			t.Fatalf("group receive %d failed", i)
		}
		seen[m.Payload()[0]] = e
	}
	if seen[0] != rep2 || seen[1] != rep1 {
		t.Fatal("messages attributed to wrong endpoints")
	}
	if _, _, ok := g.Receive(); ok {
		t.Fatal("phantom group message")
	}
}

func TestGroupValidation(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	if _, err := a.NewGroup(); err != ErrEmptyGroup {
		t.Fatalf("empty group: %v", err)
	}
	sep, _ := a.NewSendEndpoint(4)
	if _, err := a.NewGroup(sep); err == nil {
		t.Fatal("send endpoint accepted in group")
	}
	repB, _ := b.NewRecvEndpoint(4)
	if _, err := a.NewGroup(repB); err == nil {
		t.Fatal("foreign-domain endpoint accepted in group")
	}
}

func TestGroupReceiveBlock(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	a.Start()
	b.Start()
	sep, _ := a.NewSendEndpoint(4)
	rep1, _ := b.NewRecvEndpoint(4)
	rep2, _ := b.NewRecvEndpoint(4)
	g, _ := b.NewGroup(rep1, rep2)
	for _, rep := range []*Endpoint{rep1, rep2} {
		m, _ := b.AllocBuffer()
		rep.Post(m)
	}
	type result struct {
		m *Message
		e *Endpoint
	}
	got := make(chan result, 1)
	go func() {
		m, e, err := g.ReceiveBlock(1)
		if err != nil {
			t.Error(err)
		}
		got <- result{m, e}
	}()
	time.Sleep(20 * time.Millisecond)
	sb, _ := a.AllocBuffer()
	sep.Send(sb, rep2.Addr(), 3)
	select {
	case r := <-got:
		if r.e != rep2 {
			t.Fatal("wrong endpoint attributed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("group block never woke")
	}
	if g.Drops() != 0 {
		t.Fatalf("drops = %d", g.Drops())
	}
}

func TestCloseSemantics(t *testing.T) {
	doms := newCluster(t, 1, Config{})
	d := doms[0]
	d.Start()
	d.Close()
	d.Close() // idempotent
	if _, err := d.AllocBuffer(); err != ErrClosed {
		t.Fatalf("alloc after close: %v", err)
	}
	if _, err := d.NewSendEndpoint(4); err != ErrClosed {
		t.Fatalf("endpoint after close: %v", err)
	}
}

func TestEndpointFreeInvalidatesAddr(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(4)
	rep, _ := b.NewRecvEndpoint(4)
	stale := rep.Addr()
	if err := rep.Free(); err != nil {
		t.Fatal(err)
	}
	m, _ := a.AllocBuffer()
	sep.Send(m, stale, 1)
	pump(a, b)
	if st := b.Engine().Stats(); st.AddrDrops != 1 {
		t.Fatalf("stale send not dropped: %+v", st)
	}
}

func TestPendingDepths(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(4)
	rep, _ := b.NewRecvEndpoint(4)
	m, _ := a.AllocBuffer()
	sep.Send(m, rep.Addr(), 1)
	toProc, toAcq := sep.Pending()
	if toProc != 1 || toAcq != 0 {
		t.Fatalf("pending = %d,%d", toProc, toAcq)
	}
	pump(a, b)
	toProc, toAcq = sep.Pending()
	if toProc != 0 || toAcq != 1 {
		t.Fatalf("pending after pump = %d,%d", toProc, toAcq)
	}
	if sep.QueueDepth() != 4 {
		t.Fatalf("QueueDepth = %d", sep.QueueDepth())
	}
}

// Multiple cooperating applications share one communication buffer by
// dividing its endpoints (paper §Architecture and Design).
func TestTwoAppsShareDomain(t *testing.T) {
	doms := newCluster(t, 2, Config{NumBuffers: 64})
	a, b := doms[0], doms[1]
	a.Start()
	b.Start()

	// App 1 and App 2 on node b, separate endpoints and traffic classes.
	repTracks, _ := b.NewRecvEndpoint(8)
	repMaint, _ := b.NewRecvEndpoint(8)
	for i := 0; i < 8; i++ {
		m1, _ := b.AllocBuffer()
		repTracks.Post(m1)
		m2, _ := b.AllocBuffer()
		repMaint.Post(m2)
	}
	sepT, _ := a.NewSendEndpoint(8)
	sepM, _ := a.NewSendEndpoint(8)

	var wg sync.WaitGroup
	recv := func(rep *Endpoint, want string, count int) {
		defer wg.Done()
		got := 0
		deadline := time.Now().Add(10 * time.Second)
		for got < count && time.Now().Before(deadline) {
			if m, ok := rep.Receive(); ok {
				if string(m.Payload()[:m.Len()]) != want {
					t.Errorf("class cross-talk: %q on %q endpoint", m.Payload()[:m.Len()], want)
				}
				got++
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
		if got != count {
			t.Errorf("%s: received %d/%d", want, got, count)
		}
	}
	wg.Add(2)
	go recv(repTracks, "track", 4)
	go recv(repMaint, "maint", 4)
	send := func(sep *Endpoint, dst Addr, payload string, count int) {
		for i := 0; i < count; i++ {
			m, err := a.AllocBuffer()
			if err != nil {
				t.Error(err)
				return
			}
			n := copy(m.Payload(), payload)
			for sep.Send(m, dst, n) != nil {
				time.Sleep(time.Millisecond)
			}
		}
	}
	send(sepT, repTracks.Addr(), "track", 4)
	send(sepM, repMaint.Addr(), "maint", 4)
	wg.Wait()
}

func TestMessageSizeSweepConfigs(t *testing.T) {
	// The Figure 4 sweep varies the boot-time fixed message size;
	// every size in the sweep must produce a working domain.
	for size := 64; size <= 512; size += 32 {
		size := size
		t.Run(fmt.Sprintf("size%d", size), func(t *testing.T) {
			doms := newCluster(t, 2, Config{MessageSize: size})
			a, b := doms[0], doms[1]
			sep, _ := a.NewSendEndpoint(4)
			rep, _ := b.NewRecvEndpoint(4)
			rb, _ := b.AllocBuffer()
			rep.Post(rb)
			sb, _ := a.AllocBuffer()
			payload := sb.Payload()
			for i := range payload {
				payload[i] = byte(i)
			}
			if err := sep.Send(sb, rep.Addr(), len(payload)); err != nil {
				t.Fatal(err)
			}
			pump(a, b)
			m, ok := rep.Receive()
			if !ok || m.Len() != size-8 {
				t.Fatalf("got %v len %d, want %d", ok, m.Len(), size-8)
			}
			for i, v := range m.Payload()[:m.Len()] {
				if v != byte(i) {
					t.Fatalf("payload[%d] = %d", i, v)
				}
			}
		})
	}
}

func TestCloseWakesBlockedReceiver(t *testing.T) {
	doms := newCluster(t, 1, Config{})
	d := doms[0]
	d.Start()
	rep, _ := d.NewRecvEndpoint(4)
	errc := make(chan error, 1)
	go func() {
		_, err := rep.ReceiveBlock(1)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it block
	d.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("ReceiveBlock after close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked receiver not released by Close")
	}
}

func TestCloseWakesBlockedGroup(t *testing.T) {
	doms := newCluster(t, 1, Config{})
	d := doms[0]
	d.Start()
	rep1, _ := d.NewRecvEndpoint(4)
	rep2, _ := d.NewRecvEndpoint(4)
	g, _ := d.NewGroup(rep1, rep2)
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.ReceiveBlock(1)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	d.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("group ReceiveBlock after close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked group not released by Close")
	}
}

func TestSendFlagsDelivered(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(4)
	rep, _ := b.NewRecvEndpoint(4)
	rb, _ := b.AllocBuffer()
	rep.Post(rb)
	sb, _ := a.AllocBuffer()
	n := copy(sb.Payload(), "urgent")
	if err := sep.SendFlags(sb, rep.Addr(), n, wire.FlagUrgent|3); err != nil {
		t.Fatal(err)
	}
	pump(a, b)
	m, ok := rep.Receive()
	if !ok {
		t.Fatal("no delivery")
	}
	if m.Flags() != (wire.FlagUrgent | 3) {
		t.Fatalf("flags = %#x", m.Flags())
	}
	if wire.Priority(m.Flags()) != 3 {
		t.Fatalf("priority = %d", wire.Priority(m.Flags()))
	}
}

func TestGroupDropsAggregate(t *testing.T) {
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(8)
	rep1, _ := b.NewRecvEndpoint(4)
	rep2, _ := b.NewRecvEndpoint(4)
	g, _ := b.NewGroup(rep1, rep2)
	// No buffers posted anywhere: every send is a counted drop.
	for _, rep := range []*Endpoint{rep1, rep2} {
		m, _ := a.AllocBuffer()
		sep.Send(m, rep.Addr(), 1)
	}
	pump(a, b)
	if got := g.Drops(); got != 2 {
		t.Fatalf("group drops = %d, want 2", got)
	}
}

func TestGroupFairnessUnderSaturation(t *testing.T) {
	// One member with a *continuously refilled* backlog must not starve
	// the others: the round-robin scan resumes after the last successful
	// member, so a quiet member's message is always served within one
	// full rotation even while the busy member never drains. (The
	// one-shot variant lives in soak_test.go; this is the sustained
	// saturation scenario.)
	doms := newCluster(t, 2, Config{NumBuffers: 64})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(32)
	busy, _ := b.NewRecvEndpoint(16)
	quiet1, _ := b.NewRecvEndpoint(4)
	quiet2, _ := b.NewRecvEndpoint(4)
	g, err := b.NewGroup(busy, quiet1, quiet2)
	if err != nil {
		t.Fatal(err)
	}
	fill := func(rep *Endpoint, n int) {
		for i := 0; i < n; i++ {
			rb, err := b.AllocBuffer()
			if err != nil {
				t.Fatal(err)
			}
			rep.Post(rb)
			sb, err := a.AllocBuffer()
			if err != nil {
				t.Fatal(err)
			}
			if err := sep.Send(sb, rep.Addr(), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Saturate the busy member, trickle two messages into each quiet one.
	fill(busy, 12)
	fill(quiet1, 2)
	fill(quiet2, 2)
	pump(a, b)

	counts := map[*Endpoint]int{}
	var order []*Endpoint
	for {
		_, e, ok := g.Receive()
		if !ok {
			break
		}
		counts[e]++
		order = append(order, e)
		// Keep the busy member saturated while the quiet ones still
		// have pending messages — the starvation scenario proper.
		if counts[quiet1]+counts[quiet2] < 4 {
			fill(busy, 1)
			pump(a, b)
		}
	}
	if counts[quiet1] != 2 || counts[quiet2] != 2 {
		t.Fatalf("quiet members got %d/%d messages, want 2/2", counts[quiet1], counts[quiet2])
	}
	// Fairness bound: with three members, each quiet message must land
	// within one rotation — i.e. no member is served more than once
	// between two consecutive successful scans of another non-empty
	// member. Equivalently, both quiet members finish within the first
	// 2*len(members) receives despite the busy member never draining.
	window := 2 * len(g.Members())
	if len(order) < window {
		t.Fatalf("only %d receives recorded", len(order))
	}
	got := map[*Endpoint]int{}
	for _, e := range order[:window] {
		got[e]++
	}
	if got[quiet1] != 2 || got[quiet2] != 2 {
		t.Fatalf("quiet members served %d/%d times in first %d receives, want 2/2 (order shows starvation)",
			got[quiet1], got[quiet2], window)
	}
	// And no runs of the busy member longer than one while others waited.
	for i := 1; i < window; i++ {
		if order[i] == busy && order[i-1] == busy {
			t.Fatalf("busy member served twice in a row at position %d while quiet members had backlog", i)
		}
	}
}

func TestReceiveBlockFastPath(t *testing.T) {
	// A message already waiting must return without touching the
	// kernel registration machinery.
	doms := newCluster(t, 2, Config{})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(4)
	rep, _ := b.NewRecvEndpoint(4)
	rb, _ := b.AllocBuffer()
	rep.Post(rb)
	sb, _ := a.AllocBuffer()
	sep.Send(sb, rep.Addr(), 1)
	pump(a, b)
	done := make(chan struct{})
	go func() {
		if _, err := rep.ReceiveBlock(1); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("fast path blocked")
	}
}
