package core

import (
	"testing"

	"flipc/internal/engine"
	"flipc/internal/interconnect"
	"flipc/internal/wire"
)

// Two mutually untrusting applications share node 0, each with its own
// communication buffer (separate arenas: nothing shared), disjoint
// endpoint ranges, and one physical transport demultiplexed by
// interconnect.Mux — the paper's future-work multi-buffer extension.
// A remote peer talks to both; each application sees only its own
// traffic, and the AllowedNodes protection applies per buffer.
func TestMultipleCommBuffersPerNode(t *testing.T) {
	fabric := interconnect.NewFabric(256)
	shared, err := fabric.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	mux := interconnect.NewMux(shared)
	trustedTr, err := mux.Attach(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	restrictedTr, err := mux.Attach(8, 16)
	if err != nil {
		t.Fatal(err)
	}

	trusted, err := NewDomain(Config{
		Node: 0, MessageSize: 64, NumBuffers: 16, MaxEndpoints: 8,
	}, trustedTr)
	if err != nil {
		t.Fatal(err)
	}
	defer trusted.Close()
	// The restricted application may only talk to node 1.
	restricted, err := NewDomain(Config{
		Node: 0, MessageSize: 64, NumBuffers: 16, MaxEndpoints: 8, EndpointBase: 8,
		AllowedNodes: []wire.NodeID{1},
		Engine:       engine.Config{ValidityChecks: true},
	}, restrictedTr)
	if err != nil {
		t.Fatal(err)
	}
	defer restricted.Close()

	peerTr, err := fabric.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := NewDomain(Config{Node: 1, MessageSize: 64, NumBuffers: 32}, peerTr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	outsiderTr, err := fabric.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	outsider, err := NewDomain(Config{Node: 2, MessageSize: 64, NumBuffers: 16}, outsiderTr)
	if err != nil {
		t.Fatal(err)
	}
	defer outsider.Close()

	all := []*Domain{trusted, restricted, peer, outsider}

	// Both co-resident applications' receive endpoints must have
	// distinct address indices.
	repT, err := trusted.NewRecvEndpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	repR, err := restricted.NewRecvEndpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	if repT.Addr().Index() == repR.Addr().Index() {
		t.Fatalf("endpoint ranges collide: both at index %d", repT.Addr().Index())
	}
	mT, _ := trusted.AllocBuffer()
	repT.Post(mT)
	mR, _ := restricted.AllocBuffer()
	repR.Post(mR)

	// The peer sends one message to each application on node 0.
	sepP, _ := peer.NewSendEndpoint(8)
	for _, target := range []struct {
		dst     Addr
		payload string
	}{
		{repT.Addr(), "for trusted"},
		{repR.Addr(), "for restricted"},
	} {
		m, _ := peer.AllocBuffer()
		n := copy(m.Payload(), target.payload)
		if err := sepP.Send(m, target.dst, n); err != nil {
			t.Fatal(err)
		}
	}
	pump(all...)

	gotT, ok := repT.Receive()
	if !ok || string(gotT.Payload()[:gotT.Len()]) != "for trusted" {
		t.Fatalf("trusted app received %v", ok)
	}
	gotR, ok := repR.Receive()
	if !ok || string(gotR.Payload()[:gotR.Len()]) != "for restricted" {
		t.Fatalf("restricted app received %v", ok)
	}
	// No cross-delivery: both inboxes are now empty.
	if _, ok := repT.Receive(); ok {
		t.Fatal("trusted app saw foreign traffic")
	}
	if _, ok := repR.Receive(); ok {
		t.Fatal("restricted app saw foreign traffic")
	}

	// Per-buffer protection: the restricted application cannot reach
	// node 2, while the trusted one can.
	repO, _ := outsider.NewRecvEndpoint(4)
	mO, _ := outsider.AllocBuffer()
	repO.Post(mO)

	sepR, _ := restricted.NewSendEndpoint(4)
	forbidden, _ := restricted.AllocBuffer()
	if err := sepR.Send(forbidden, repO.Addr(), 1); err != nil {
		t.Fatal(err)
	}
	pump(all...)
	if !forbidden.Dropped() {
		t.Fatal("restricted app reached a forbidden node")
	}
	if _, ok := repO.Receive(); ok {
		t.Fatal("forbidden message delivered")
	}

	sepT, _ := trusted.NewSendEndpoint(4)
	allowed, _ := trusted.AllocBuffer()
	if err := sepT.Send(allowed, repO.Addr(), 1); err != nil {
		t.Fatal(err)
	}
	pump(all...)
	if _, ok := repO.Receive(); !ok {
		t.Fatal("trusted app's message lost")
	}
}
