// Package core is the FLIPC application interface library: the formal
// API applications program against, hiding the communication buffer's
// data structures (paper Figure 1).
//
// A Domain is one node's FLIPC instance: a communication buffer, a
// messaging engine bound to a transport, and the kernel wakeup path.
// Applications allocate fixed-size message buffers and endpoints, then
// move messages with the five-step cycle of paper Figure 2:
//
//  1. receiver posts an empty buffer on a receive endpoint   (Post)
//  2. sender queues a full buffer on a send endpoint         (Send)
//  3. the messaging engine transfers the message
//  4. receiver removes the message from the receive endpoint (Receive)
//  5. sender reclaims its buffer for reuse                   (Acquire)
//
// Send/Post/Receive/Acquire are the tuned lock-free interface variants:
// they assume at most one application thread uses the endpoint (or that
// mutual exclusion is provided at a higher level), avoiding the
// Paragon's expensive bus-locked test-and-set. The *Locked variants add
// a per-endpoint test-and-set lock for multithreaded endpoints — the
// paper's measurements all use the lock-free forms, and experiment E4
// shows why.
//
// Blocking receives use the real-time semaphore option: the waiting
// thread is woken by the kernel presenting it to the scheduler in
// priority order; FLIPC never interrupts application code with upcalls.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"flipc/internal/commbuf"
	"flipc/internal/engine"
	"flipc/internal/interconnect"
	"flipc/internal/mem"
	"flipc/internal/rtsched"
	"flipc/internal/wire"
)

// Addr re-exports the opaque endpoint address type. Receivers obtain
// addresses from Endpoint.Addr and pass them to senders out of band.
type Addr = wire.Addr

// Priority re-exports the scheduler priority type.
type Priority = rtsched.Priority

// Errors returned by the endpoint operations.
var (
	// ErrQueueFull: the endpoint queue has no free slot. Resource
	// management is the application's responsibility (or a layered
	// library's, see internal/flowctl).
	ErrQueueFull = errors.New("flipc: endpoint queue full")
	// ErrWrongType: operation does not match the endpoint type.
	ErrWrongType = errors.New("flipc: wrong endpoint type for operation")
	// ErrClosed: the domain has been closed.
	ErrClosed = errors.New("flipc: domain closed")
)

// Config configures one domain.
type Config struct {
	// Node is this node's cluster identity.
	Node wire.NodeID
	// MessageSize is the boot-time fixed message size (>=64, multiple
	// of 32); applications get MessageSize-8 payload bytes.
	MessageSize int
	// NumBuffers sizes the message buffer table.
	NumBuffers int
	// MaxEndpoints sizes the endpoint descriptor table.
	MaxEndpoints int
	// EndpointBase offsets this domain's endpoint indices so several
	// domains (mutually untrusting applications, each with its own
	// communication buffer) can share one node through
	// interconnect.NewMux.
	EndpointBase int
	// DefaultQueueDepth is the endpoint queue capacity used when
	// endpoints are allocated with depth 0.
	DefaultQueueDepth int
	// Padded selects the tuned cache layout (default true — pass
	// UnpaddedLayout to reproduce the pre-tuning behaviour).
	UnpaddedLayout bool
	// AllowedNodes, when non-empty, restricts where this domain may
	// send (enforced by the engine's validity checks) — the paper's
	// future-work protection extension for mutually untrusting
	// applications. The local node is always allowed.
	AllowedNodes []wire.NodeID
	// Engine tunes the messaging engine (validity checks, quanta,
	// send policy).
	Engine engine.Config
}

// Domain is one node's FLIPC instance.
type Domain struct {
	buf    *commbuf.Buffer
	eng    *engine.Engine
	kernel *rtsched.Kernel
	app    mem.View

	mu      sync.Mutex
	started bool
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// NewDomain creates a domain on the given transport. The transport's
// local node must match cfg.Node.
func NewDomain(cfg Config, tr interconnect.Transport) (*Domain, error) {
	buf, err := commbuf.New(commbuf.Config{
		Node:              cfg.Node,
		MessageSize:       cfg.MessageSize,
		NumBuffers:        cfg.NumBuffers,
		MaxEndpoints:      cfg.MaxEndpoints,
		EndpointBase:      cfg.EndpointBase,
		DefaultQueueDepth: cfg.DefaultQueueDepth,
		AllowedNodes:      cfg.AllowedNodes,
		Padded:            !cfg.UnpaddedLayout,
	})
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(buf, tr, cfg.Engine)
	if err != nil {
		return nil, err
	}
	return &Domain{
		buf:    buf,
		eng:    eng,
		kernel: rtsched.NewKernel(buf.Doorbell(), buf.View(mem.ActorKernel)),
		app:    buf.View(mem.ActorApp),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Buffer exposes the communication buffer (experiments, tracing).
func (d *Domain) Buffer() *commbuf.Buffer { return d.buf }

// Engine exposes the messaging engine (experiments, stats).
func (d *Domain) Engine() *engine.Engine { return d.eng }

// Kernel exposes the wakeup kernel (experiments, scheduling tests).
func (d *Domain) Kernel() *rtsched.Kernel { return d.kernel }

// MaxPayload returns the application payload bytes per message.
func (d *Domain) MaxPayload() int { return d.buf.Config().MaxPayload() }

// Poll runs one engine pass plus a kernel pump, for callers that drive
// the domain manually (simulations, single-threaded tests). Returns
// whether the engine did any work.
func (d *Domain) Poll() bool {
	work := d.eng.Poll()
	d.kernel.Pump()
	return work
}

// Start launches the host loop that drives the engine and kernel from a
// dedicated goroutine — the in-process stand-in for the Paragon's
// message coprocessor. Safe to call once; Close stops it.
func (d *Domain) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started || d.closed {
		return
	}
	d.started = true
	go func() {
		defer close(d.done)
		for {
			select {
			case <-d.stop:
				return
			default:
			}
			if !d.Poll() {
				// Idle: yield the processor, mirroring the coprocessor's
				// event loop spinning on quiet hardware.
				runtime.Gosched()
			}
		}
	}()
}

// Close stops the host loop. Endpoint operations after Close return
// ErrClosed.
func (d *Domain) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	started := d.started
	d.mu.Unlock()
	close(d.stop)
	if started {
		<-d.done
	}
}

func (d *Domain) isClosed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// Message is an application handle on one fixed-size message buffer.
type Message struct {
	d *Domain
	m *commbuf.Msg
}

// AllocBuffer takes a message buffer from the communication buffer's
// pool. FLIPC internalizes buffers to guarantee alignment; applications
// must allocate through here rather than supplying their own memory.
func (d *Domain) AllocBuffer() (*Message, error) {
	if d.isClosed() {
		return nil, ErrClosed
	}
	m, err := d.buf.AllocMsg()
	if err != nil {
		return nil, err
	}
	return &Message{d: d, m: m}, nil
}

// FreeBuffer returns a buffer to the pool.
func (d *Domain) FreeBuffer(msg *Message) error {
	if msg == nil || msg.d != d {
		return fmt.Errorf("flipc: FreeBuffer of foreign or nil message")
	}
	return d.buf.FreeMsg(msg.m)
}

// Payload returns the full payload area (MaxPayload bytes). Valid only
// while the application owns the buffer.
func (msg *Message) Payload() []byte { return msg.m.Payload() }

// Len returns the message's payload length: what the sender staged, or
// what arrived on a received message.
func (msg *Message) Len() int { return msg.m.Size(msg.d.app) }

// Flags returns the received message's flags byte.
func (msg *Message) Flags() uint8 { return msg.m.Flags(msg.d.app) }

// Done reports whether the engine has finished with this buffer —
// per-buffer completion detection without touching the queue.
func (msg *Message) Done() bool { return msg.m.Done(msg.d.app) }

// Dropped reports whether the engine refused this send during validity
// checking.
func (msg *Message) Dropped() bool { return msg.m.State(msg.d.app) == commbuf.StateDropped }

// ID returns the buffer-table index (diagnostics).
func (msg *Message) ID() int { return msg.m.ID() }
