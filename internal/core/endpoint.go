package core

import (
	"fmt"
	"time"

	"flipc/internal/commbuf"
	"flipc/internal/rtsched"
)

// Endpoint is the application handle on one FLIPC endpoint. The
// unqualified operations (Send, Post, Receive, Acquire) are the tuned
// lock-free variants: they are safe when at most one application thread
// uses the endpoint at a time. The *Locked variants serialize
// application threads with the endpoint's test-and-set lock.
type Endpoint struct {
	d   *Domain
	ep  *commbuf.Endpoint
	sem *rtsched.Semaphore
}

// NewSendEndpoint allocates a send endpoint with the given queue depth
// (0 = domain default).
func (d *Domain) NewSendEndpoint(depth int) (*Endpoint, error) {
	return d.newEndpoint(commbuf.EndpointSend, depth, 0)
}

// NewRecvEndpoint allocates a receive endpoint with the given queue
// depth (0 = domain default).
func (d *Domain) NewRecvEndpoint(depth int) (*Endpoint, error) {
	return d.newEndpoint(commbuf.EndpointRecv, depth, 0)
}

// NewSendEndpointPrio allocates a send endpoint with a transport
// priority (the prioritized-transport extension; higher drains first
// under engine.PolicyPriority).
func (d *Domain) NewSendEndpointPrio(depth int, prio uint8) (*Endpoint, error) {
	return d.newEndpoint(commbuf.EndpointSend, depth, prio)
}

func (d *Domain) newEndpoint(typ commbuf.EndpointType, depth int, prio uint8) (*Endpoint, error) {
	if d.isClosed() {
		return nil, ErrClosed
	}
	ep, err := d.buf.AllocEndpointPrio(typ, depth, prio)
	if err != nil {
		return nil, err
	}
	return &Endpoint{d: d, ep: ep, sem: rtsched.NewSemaphore(0)}, nil
}

// Free releases the endpoint, invalidating its address.
func (e *Endpoint) Free() error {
	e.d.kernel.Unregister(e.ep.Index())
	return e.d.buf.FreeEndpoint(e.ep)
}

// Addr returns the endpoint's opaque address.
func (e *Endpoint) Addr() Addr { return e.ep.Addr() }

// QueueDepth returns the endpoint queue capacity.
func (e *Endpoint) QueueDepth() int { return e.ep.Queue().Capacity() }

// Pending returns (buffers awaiting engine processing, buffers
// processed but not yet acquired).
func (e *Endpoint) Pending() (toProcess, toAcquire int) {
	return e.ep.Queue().Depths(e.d.app)
}

// Drops returns the endpoint's discarded-message count since the last
// reset, without resetting.
func (e *Endpoint) Drops() uint64 { return e.ep.Drops().Read(e.d.app) }

// ReadAndResetDrops returns and resets the discarded-message count as a
// single logical operation; increments racing the reset are never lost
// (the two-location wait-free counter, §Wait-Free Synchronization).
func (e *Endpoint) ReadAndResetDrops() uint64 { return e.ep.Drops().ReadAndReset(e.d.app) }

// Send queues msg for asynchronous one-way delivery of n payload bytes
// to dst (step 2 of Figure 2). The buffer belongs to the engine until
// it reappears through Acquire; delivery is unacknowledged and the
// receiver discards if it has no buffer posted.
func (e *Endpoint) Send(msg *Message, dst Addr, n int) error {
	return e.send(msg, dst, n, 0)
}

// SendFlags is Send with a flags byte (priority class bits, FlagUrgent).
func (e *Endpoint) SendFlags(msg *Message, dst Addr, n int, flags uint8) error {
	return e.send(msg, dst, n, flags)
}

func (e *Endpoint) send(msg *Message, dst Addr, n int, flags uint8) error {
	if e.ep.Type() != commbuf.EndpointSend {
		return ErrWrongType
	}
	if msg == nil || msg.d != e.d {
		return fmt.Errorf("flipc: Send of foreign or nil message")
	}
	if e.ep.Queue().Full(e.d.app) {
		return ErrQueueFull
	}
	if err := msg.m.StageSend(e.d.app, dst, n, flags); err != nil {
		return err
	}
	if !e.ep.Queue().Release(e.d.app, uint64(msg.m.ID())) {
		// Racing thread filled the queue between the check and the
		// release; undo the staging. (Single-threaded callers never
		// reach this; *Locked callers hold the lock.)
		if err := msg.m.Reclaim(e.d.app); err == nil {
			return ErrQueueFull
		}
		return ErrQueueFull
	}
	return nil
}

// Post provides an empty buffer to a receive endpoint (step 1 of
// Figure 2). Buffers post in FIFO order; an arrival with no posted
// buffer is discarded and counted.
func (e *Endpoint) Post(msg *Message) error {
	if e.ep.Type() != commbuf.EndpointRecv {
		return ErrWrongType
	}
	if msg == nil || msg.d != e.d {
		return fmt.Errorf("flipc: Post of foreign or nil message")
	}
	if e.ep.Queue().Full(e.d.app) {
		return ErrQueueFull
	}
	if err := msg.m.StageRecv(e.d.app); err != nil {
		return err
	}
	if !e.ep.Queue().Release(e.d.app, uint64(msg.m.ID())) {
		if err := msg.m.Reclaim(e.d.app); err == nil {
			return ErrQueueFull
		}
		return ErrQueueFull
	}
	return nil
}

// Acquire removes the oldest engine-processed buffer from the endpoint
// (steps 4/5 of Figure 2): on a send endpoint, a transmitted (or
// refused) buffer ready for reuse; on a receive endpoint, a delivered
// message. It reports false when nothing is ready.
func (e *Endpoint) Acquire() (*Message, bool) {
	id, ok := e.ep.Queue().Acquire(e.d.app)
	if !ok {
		return nil, false
	}
	m, err := e.d.buf.MsgByID(id)
	if err != nil {
		// Only possible if the application corrupted its own queue.
		return nil, false
	}
	msg := &Message{d: e.d, m: m}
	if err := m.Reclaim(e.d.app); err != nil {
		// The engine marked it neither Done nor Dropped — application
		// misuse; surface the buffer anyway so it is not leaked.
		return msg, true
	}
	return msg, true
}

// Receive is Acquire spelled for receive endpoints: it returns the next
// delivered message.
func (e *Endpoint) Receive() (*Message, bool) {
	if e.ep.Type() != commbuf.EndpointRecv {
		return nil, false
	}
	return e.Acquire()
}

// Locked interface variants: identical semantics, with application
// threads serialized by the endpoint's test-and-set lock. On the
// Paragon this lock is not cache resident and costs a bus-locked memory
// operation per acquire — measured in experiment E4.

// SendLocked is Send under the endpoint lock.
func (e *Endpoint) SendLocked(msg *Message, dst Addr, n int) error {
	e.ep.Lock(e.d.app)
	defer e.ep.Unlock(e.d.app)
	return e.send(msg, dst, n, 0)
}

// PostLocked is Post under the endpoint lock.
func (e *Endpoint) PostLocked(msg *Message) error {
	e.ep.Lock(e.d.app)
	defer e.ep.Unlock(e.d.app)
	return e.Post(msg)
}

// AcquireLocked is Acquire under the endpoint lock.
func (e *Endpoint) AcquireLocked() (*Message, bool) {
	e.ep.Lock(e.d.app)
	defer e.ep.Unlock(e.d.app)
	return e.Acquire()
}

// ReceiveLocked is Receive under the endpoint lock.
func (e *Endpoint) ReceiveLocked() (*Message, bool) {
	e.ep.Lock(e.d.app)
	defer e.ep.Unlock(e.d.app)
	return e.Receive()
}

// wakePollFallback bounds how long a blocked receiver trusts the
// doorbell before re-polling. The doorbell ring can fill under load (a
// wait-free structure cannot block the producer), so blocking receives
// are doorbell-driven with a polling safety net.
const wakePollFallback = 2 * time.Millisecond

// ReceiveBlock blocks until a message arrives, waking through the
// real-time semaphore path: the engine rings the kernel doorbell, the
// kernel presents this thread to the scheduler, and the scheduler
// releases waiters in priority order. prio is this thread's scheduling
// priority.
func (e *Endpoint) ReceiveBlock(prio Priority) (*Message, error) {
	if e.ep.Type() != commbuf.EndpointRecv {
		return nil, ErrWrongType
	}
	if msg, ok := e.Receive(); ok {
		return msg, nil
	}
	if err := e.d.kernel.Register(e.ep.Index(), rtsched.Registration{Sem: e.sem, Prio: prio}); err != nil {
		return nil, err
	}
	e.ep.SetWakeup(e.d.app, true)
	defer func() {
		e.ep.SetWakeup(e.d.app, false)
		e.d.kernel.Unregister(e.ep.Index())
	}()
	for {
		// Re-check after arming the flag: a message that landed between
		// the fast path and SetWakeup must not be missed.
		if msg, ok := e.Receive(); ok {
			return msg, nil
		}
		if e.d.isClosed() {
			return nil, ErrClosed
		}
		e.sem.WaitTimeout(prio, wakePollFallback)
	}
}
