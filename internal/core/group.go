package core

import (
	"errors"
	"fmt"

	"flipc/internal/commbuf"
	"flipc/internal/rtsched"
)

// Group logically combines several receive endpoints into a single
// receive abstraction (paper §Architecture and Design). The receive
// operation returns a message from *any* member endpoint.
//
// The group is implemented entirely in the library: the resource
// control model ties buffers to endpoints, so the endpoint queues
// cannot be merged — the library scans members instead, round-robin so
// a busy member cannot starve the others.
type Group struct {
	d   *Domain
	eps []*Endpoint
	rr  int
	sem *rtsched.Semaphore
}

// ErrEmptyGroup is returned when constructing a group with no members.
var ErrEmptyGroup = errors.New("flipc: endpoint group needs at least one member")

// NewGroup builds a group from receive endpoints of one domain.
func (d *Domain) NewGroup(eps ...*Endpoint) (*Group, error) {
	if len(eps) == 0 {
		return nil, ErrEmptyGroup
	}
	for _, e := range eps {
		if e == nil || e.d != d {
			return nil, fmt.Errorf("flipc: group member from another domain")
		}
		if e.ep.Type() != commbuf.EndpointRecv {
			return nil, fmt.Errorf("flipc: group member %v is not a receive endpoint", e.Addr())
		}
	}
	return &Group{d: d, eps: append([]*Endpoint(nil), eps...), sem: rtsched.NewSemaphore(0)}, nil
}

// Members returns the group's endpoints (in construction order).
func (g *Group) Members() []*Endpoint { return append([]*Endpoint(nil), g.eps...) }

// Receive returns the next available message from any member endpoint,
// scanning round-robin from after the last successful member.
func (g *Group) Receive() (*Message, *Endpoint, bool) {
	n := len(g.eps)
	for k := 0; k < n; k++ {
		e := g.eps[(g.rr+k)%n]
		if msg, ok := e.Receive(); ok {
			g.rr = (g.rr + k + 1) % n
			return msg, e, true
		}
	}
	return nil, nil, false
}

// ReceiveBlock blocks until any member endpoint has a message, waking
// through the same kernel/scheduler path as Endpoint.ReceiveBlock. All
// members share one semaphore registration while the call is blocked.
func (g *Group) ReceiveBlock(prio Priority) (*Message, *Endpoint, error) {
	if msg, e, ok := g.Receive(); ok {
		return msg, e, nil
	}
	for _, e := range g.eps {
		if err := g.d.kernel.Register(e.ep.Index(), rtsched.Registration{Sem: g.sem, Prio: prio}); err != nil {
			return nil, nil, err
		}
		e.ep.SetWakeup(g.d.app, true)
	}
	defer func() {
		for _, e := range g.eps {
			e.ep.SetWakeup(g.d.app, false)
			g.d.kernel.Unregister(e.ep.Index())
		}
	}()
	for {
		if msg, e, ok := g.Receive(); ok {
			return msg, e, nil
		}
		if g.d.isClosed() {
			return nil, nil, ErrClosed
		}
		g.sem.WaitTimeout(prio, wakePollFallback)
	}
}

// Drops sums the members' discarded-message counts (without resetting).
func (g *Group) Drops() uint64 {
	var total uint64
	for _, e := range g.eps {
		total += e.Drops()
	}
	return total
}
