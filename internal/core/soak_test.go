package core

import (
	"fmt"
	"math/rand"
	"testing"

	"flipc/internal/interconnect"
	"flipc/internal/wire"
)

// Soak test: a randomized cluster where the global conservation law
// must hold — every message is exactly one of delivered, discarded
// at the receiver (counted on its endpoint), refused by checks, or
// still queued. Drives the full stack (library, engine, transport)
// through thousands of randomly interleaved operations with mixed
// window sizes.
func TestClusterSoakConservation(t *testing.T) {
	const (
		nodes = 4
		seed  = 20260706
		ops   = 4000
	)
	rng := rand.New(rand.NewSource(seed))
	fabric := interconnect.NewFabric(1024)
	doms := make([]*Domain, nodes)
	for i := range doms {
		tr, err := fabric.Attach(wire.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDomain(Config{
			Node: wire.NodeID(i), MessageSize: 64, NumBuffers: 128, MaxEndpoints: 16,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		doms[i] = d
	}
	pumpAll := func() {
		for pass := 0; pass < 200; pass++ {
			work := false
			for _, d := range doms {
				if d.Poll() {
					work = true
				}
			}
			if !work {
				return
			}
		}
	}

	// Per node: one send endpoint; several receive endpoints with mixed
	// depths, sparsely stocked so drops genuinely occur.
	type inbox struct {
		node int
		ep   *Endpoint
	}
	seps := make([]*Endpoint, nodes)
	var inboxes []inbox
	for i, d := range doms {
		sep, err := d.NewSendEndpoint(32)
		if err != nil {
			t.Fatal(err)
		}
		seps[i] = sep
		for k := 0; k < 3; k++ {
			depth := []int{2, 4, 8}[k]
			rep, err := d.NewRecvEndpoint(depth)
			if err != nil {
				t.Fatal(err)
			}
			// Stock between 0 and depth-1 buffers.
			for b := 0; b < rng.Intn(depth); b++ {
				m, err := d.AllocBuffer()
				if err != nil {
					t.Fatal(err)
				}
				if rep.Post(m) != nil {
					d.FreeBuffer(m)
				}
			}
			inboxes = append(inboxes, inbox{node: i, ep: rep})
		}
	}

	var sent, delivered, reposted uint64
	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // send from a random node to a random inbox
			src := rng.Intn(nodes)
			dst := inboxes[rng.Intn(len(inboxes))]
			m, err := doms[src].AllocBuffer()
			if err != nil {
				// Pool pressure: reclaim completed sends.
				for {
					back, ok := seps[src].Acquire()
					if !ok {
						break
					}
					doms[src].FreeBuffer(back)
				}
				continue
			}
			m.Payload()[0] = byte(op)
			if err := seps[src].Send(m, dst.ep.Addr(), 1); err != nil {
				doms[src].FreeBuffer(m)
				continue
			}
			sent++
		case 5, 6, 7: // receive from a random inbox, sometimes repost
			in := inboxes[rng.Intn(len(inboxes))]
			if m, ok := in.ep.Receive(); ok {
				delivered++
				if rng.Intn(2) == 0 {
					if in.ep.Post(m) == nil {
						reposted++
					} else {
						doms[in.node].FreeBuffer(m)
					}
				} else {
					doms[in.node].FreeBuffer(m)
				}
			} else if rng.Intn(2) == 0 {
				// Restock an empty inbox so deliveries keep happening.
				if m, err := doms[in.node].AllocBuffer(); err == nil {
					if in.ep.Post(m) != nil {
						doms[in.node].FreeBuffer(m)
					}
				}
			}
		case 8: // reclaim completed sends
			src := rng.Intn(nodes)
			for {
				back, ok := seps[src].Acquire()
				if !ok {
					break
				}
				doms[src].FreeBuffer(back)
			}
		case 9: // run the engines
			pumpAll()
		}
	}
	pumpAll()

	// Drain every inbox and endpoint completely.
	for _, in := range inboxes {
		for {
			m, ok := in.ep.Receive()
			if !ok {
				break
			}
			delivered++
			doms[in.node].FreeBuffer(m)
		}
	}
	var dropped, refused, inQueue uint64
	for _, in := range inboxes {
		dropped += in.ep.Drops()
	}
	for i, sep := range seps {
		toProc, toAcq := sep.Pending()
		inQueue += uint64(toProc)
		_ = toAcq
		refused += sep.Drops()
		st := doms[i].Engine().Stats()
		if st.BadFrames != 0 {
			t.Errorf("node %d: %d bad frames", i, st.BadFrames)
		}
	}
	// Conservation: sent = delivered + dropped + refused + still queued.
	got := delivered + dropped + refused + inQueue
	if got != sent {
		t.Fatalf("conservation violated: sent %d != delivered %d + dropped %d + refused %d + queued %d (= %d)",
			sent, delivered, dropped, refused, inQueue, got)
	}
	if delivered == 0 || dropped == 0 {
		t.Fatalf("soak not exercising both paths: delivered=%d dropped=%d", delivered, dropped)
	}
	t.Logf("soak: sent=%d delivered=%d dropped=%d refused=%d queued=%d reposts=%d",
		sent, delivered, dropped, refused, inQueue, reposted)
}

// Group receives must scan round-robin so a chatty member cannot starve
// the others.
func TestGroupRoundRobinFairness(t *testing.T) {
	doms := newCluster(t, 2, Config{NumBuffers: 64})
	a, b := doms[0], doms[1]
	sep, _ := a.NewSendEndpoint(16)
	repBusy, _ := b.NewRecvEndpoint(8)
	repQuiet, _ := b.NewRecvEndpoint(8)
	g, _ := b.NewGroup(repBusy, repQuiet)
	for i := 0; i < 6; i++ {
		m, _ := b.AllocBuffer()
		repBusy.Post(m)
	}
	m, _ := b.AllocBuffer()
	repQuiet.Post(m)
	// Six messages to the busy endpoint, one to the quiet one.
	for i := 0; i < 6; i++ {
		sm, _ := a.AllocBuffer()
		sm.Payload()[0] = 'B'
		if err := sep.Send(sm, repBusy.Addr(), 1); err != nil {
			t.Fatal(err)
		}
	}
	sm, _ := a.AllocBuffer()
	sm.Payload()[0] = 'Q'
	if err := sep.Send(sm, repQuiet.Addr(), 1); err != nil {
		t.Fatal(err)
	}
	pump(a, b)
	// Round-robin: the quiet endpoint's message must surface by the
	// second group receive, not after the busy backlog.
	var order []byte
	for {
		m, _, ok := g.Receive()
		if !ok {
			break
		}
		order = append(order, m.Payload()[0])
	}
	if len(order) != 7 {
		t.Fatalf("received %d/7", len(order))
	}
	quietPos := -1
	for i, c := range order {
		if c == 'Q' {
			quietPos = i
		}
	}
	if quietPos > 1 {
		t.Fatalf("quiet endpoint starved until position %d: %s", quietPos, string(order))
	}
}

func TestGroupMemberCount(t *testing.T) {
	doms := newCluster(t, 1, Config{})
	d := doms[0]
	var eps []*Endpoint
	for i := 0; i < 5; i++ {
		ep, err := d.NewRecvEndpoint(4)
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
	}
	g, err := d.NewGroup(eps...)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Members()) != 5 {
		t.Fatalf("members = %d", len(g.Members()))
	}
	// Members returns a copy.
	g.Members()[0] = nil
	if g.Members()[0] == nil {
		t.Fatal("Members leaked internal slice")
	}
	_ = fmt.Sprintf("%v", g)
}
