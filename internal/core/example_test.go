package core_test

import (
	"fmt"
	"log"

	"flipc/internal/core"
	"flipc/internal/interconnect"
	"flipc/internal/wire"
)

// ExampleDomain walks the paper's five-step message transfer (Figure 2)
// between two nodes, driving the engines manually.
func ExampleDomain() {
	fabric := interconnect.NewFabric(64)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{Node: id, MessageSize: 64, NumBuffers: 8}, tr)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	sender := newNode(0)
	defer sender.Close()
	receiver := newNode(1)
	defer receiver.Close()

	rep, _ := receiver.NewRecvEndpoint(4)
	rbuf, _ := receiver.AllocBuffer()
	rep.Post(rbuf) // step 1: provide a receive buffer

	sep, _ := sender.NewSendEndpoint(4)
	sbuf, _ := sender.AllocBuffer()
	n := copy(sbuf.Payload(), "hello")
	sep.Send(sbuf, rep.Addr(), n) // step 2: queue the message

	for { // step 3: the messaging engines move it
		sender.Poll()
		receiver.Poll()
		if msg, ok := rep.Receive(); ok { // step 4: remove it
			fmt.Printf("%s\n", msg.Payload()[:msg.Len()])
			break
		}
	}
	if _, ok := sep.Acquire(); ok { // step 5: reclaim the send buffer
		fmt.Println("buffer reclaimed")
	}
	// Output:
	// hello
	// buffer reclaimed
}

// ExampleEndpoint_ReadAndResetDrops shows the wait-free two-location
// drop counter: an overrun is counted exactly and the reset loses
// nothing.
func ExampleEndpoint_ReadAndResetDrops() {
	fabric := interconnect.NewFabric(64)
	trA, _ := fabric.Attach(0)
	trB, _ := fabric.Attach(1)
	a, _ := core.NewDomain(core.Config{Node: 0, MessageSize: 64, NumBuffers: 8}, trA)
	defer a.Close()
	b, _ := core.NewDomain(core.Config{Node: 1, MessageSize: 64, NumBuffers: 8}, trB)
	defer b.Close()

	rep, _ := b.NewRecvEndpoint(4) // no buffers posted: everything drops
	sep, _ := a.NewSendEndpoint(4)
	for i := 0; i < 3; i++ {
		m, _ := a.AllocBuffer()
		sep.Send(m, rep.Addr(), 1)
	}
	for i := 0; i < 20; i++ {
		a.Poll()
		b.Poll()
	}
	fmt.Println("dropped:", rep.ReadAndResetDrops())
	fmt.Println("after reset:", rep.Drops())
	// Output:
	// dropped: 3
	// after reset: 0
}
