module flipc

go 1.22
