// Bulk: moving data larger than the fixed message size with the
// fragmentation library (internal/frag) — the simplest version of the
// paper's future-work integration with bulk transfer, and a live
// demonstration of why it is only a stopgap: per-message overhead caps
// throughput well below what NX/SUNMOS-style bulk protocols reach
// (experiment E8 quantifies this on the Paragon model).
//
// A 256 KB "sensor image" crosses two nodes as ~520 fixed-size
// fragments, with the receiver drained inside the sender's
// backpressure pump (static flow control: inbox window >= outbox burst).
//
//	go run ./examples/bulk
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"flipc/internal/core"
	"flipc/internal/frag"
	"flipc/internal/interconnect"
	"flipc/internal/msglib"
	"flipc/internal/wire"
)

const imageBytes = 256 << 10

func main() {
	fabric := interconnect.NewFabric(1024)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{
			Node:              id,
			MessageSize:       512, // big messages for bulk work
			NumBuffers:        64,
			DefaultQueueDepth: 32,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	src := newNode(0)
	defer src.Close()
	dst := newNode(1)
	defer dst.Close()

	out, err := msglib.NewOutbox(src, 16, 16)
	if err != nil {
		log.Fatal(err)
	}
	in, err := msglib.NewInbox(dst, 32, 16) // window >= outbox burst
	if err != nil {
		log.Fatal(err)
	}
	sender := frag.NewSender(src, out)
	receiver := frag.NewReceiver(in)

	image := make([]byte, imageBytes)
	for i := range image {
		image[i] = byte(i*31 + i>>8)
	}

	var result []byte
	done := false
	pump := func() {
		for i := 0; i < 64; i++ {
			work := src.Poll()
			if dst.Poll() {
				work = true
			}
			if !work {
				break
			}
		}
		if done {
			return
		}
		got, ok, err := receiver.Poll()
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			result = got
			done = true
		}
	}

	chunk := frag.ChunkBytes(src.MaxPayload())
	frags := (imageBytes + chunk - 1) / chunk
	start := time.Now()
	if err := sender.Send(in.Addr(), image, pump); err != nil {
		log.Fatal(err)
	}
	for !done {
		pump()
	}
	elapsed := time.Since(start)

	if !bytes.Equal(result, image) {
		log.Fatal("bulk transfer corrupted the image")
	}
	fmt.Printf("transferred %d KB as %d fragments of %d bytes in %v\n",
		imageBytes>>10, frags, chunk, elapsed.Round(time.Microsecond))
	fmt.Printf("wall-clock throughput (Go substrate): %.0f MB/s\n",
		float64(imageBytes)/1e6/elapsed.Seconds())
	fmt.Printf("drops: %d (inbox window %d >= outbox burst 16: static flow control held)\n",
		in.Drops(), 16)
	fmt.Println("on the Paragon model this path plateaus at ~80 MB/s vs NX 140 / SUNMOS 160 (see E8)")
}
