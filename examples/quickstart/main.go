// Quickstart: the five-step FLIPC message cycle (paper Figure 2)
// between two nodes on an in-process interconnect.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flipc/internal/core"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/wire"
)

func main() {
	// One fabric, two nodes, one domain each. On the Paragon the
	// messaging engine runs on the message coprocessor; Start() gives
	// it a goroutine here.
	fabric := interconnect.NewFabric(64)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{
			Node:        id,
			MessageSize: 128, // fixed at boot; applications get 120 payload bytes
			NumBuffers:  32,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		d.Start()
		return d
	}
	sender := newNode(0)
	defer sender.Close()
	receiver := newNode(1)
	defer receiver.Close()

	// FLIPC addresses are opaque; a name service conveys them.
	names := nameservice.New()

	// Receiver: allocate a receive endpoint, register it, post a buffer
	// (step 1 — resource control is explicit and application-owned).
	rep, err := receiver.NewRecvEndpoint(8)
	if err != nil {
		log.Fatal(err)
	}
	if err := names.Register("quickstart.inbox", rep.Addr()); err != nil {
		log.Fatal(err)
	}
	rbuf, err := receiver.AllocBuffer()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Post(rbuf); err != nil {
		log.Fatal(err)
	}

	// Sender: look up the destination, fill a buffer, send (step 2).
	sep, err := sender.NewSendEndpoint(8)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := names.Lookup("quickstart.inbox")
	if err != nil {
		log.Fatal(err)
	}
	sbuf, err := sender.AllocBuffer()
	if err != nil {
		log.Fatal(err)
	}
	n := copy(sbuf.Payload(), "hello from the medium-message class")
	if err := sep.Send(sbuf, dst, n); err != nil {
		log.Fatal(err)
	}

	// Step 3 happens on the engines. Step 4: blocking receive through
	// the real-time semaphore path (no interrupting upcalls).
	msg, err := rep.ReceiveBlock(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received %d bytes: %q\n", msg.Len(), msg.Payload()[:msg.Len()])

	// Step 5: the sender reclaims its buffer for reuse.
	for {
		if done, ok := sep.Acquire(); ok {
			if err := sender.FreeBuffer(done); err != nil {
				log.Fatal(err)
			}
			break
		}
	}
	if err := receiver.FreeBuffer(msg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("five-step cycle complete; drops:", rep.Drops())
}
