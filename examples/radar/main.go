// Radar: the event-driven distributed real-time scenario that motivates
// FLIPC (think shipboard combat systems: "the system must not only
// process a message announcing detection of an incoming missile in
// preference to a message indicating that it is time for preventative
// maintenance, but must also ensure that the latter message does not
// consume resources required to handle the former").
//
// A sensor node produces two traffic classes toward a command node:
//
//   - track updates: urgent, on their own endpoint with its own buffers
//     and a high-priority blocked receiver;
//   - maintenance telemetry: bulk chatter, on a separate endpoint with a
//     deliberately small buffer allotment and a low-priority receiver.
//
// The maintenance flood overruns its own endpoint (counted drops) but
// cannot take buffers from the track class, and the scheduler wakes the
// track thread first — resource isolation and priority, per the paper.
//
//	go run ./examples/radar
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"flipc/internal/core"
	"flipc/internal/interconnect"
	"flipc/internal/msglib"
	"flipc/internal/nameservice"
	"flipc/internal/wire"
)

const (
	trackCount = 12
	maintFlood = 64 // far more than the maintenance endpoint's buffers
)

func main() {
	fabric := interconnect.NewFabric(256)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{Node: id, MessageSize: 128, NumBuffers: 64}, tr)
		if err != nil {
			log.Fatal(err)
		}
		d.Start()
		return d
	}
	sensor := newNode(0)
	defer sensor.Close()
	command := newNode(1)
	defer command.Close()
	names := nameservice.New()

	// Command node: two endpoints, two traffic classes, separate
	// resources. Track gets a deep buffer allotment; maintenance a
	// shallow one — the explicit resource-control model.
	tracks, err := command.NewRecvEndpoint(16)
	if err != nil {
		log.Fatal(err)
	}
	maint, err := command.NewRecvEndpoint(8)
	if err != nil {
		log.Fatal(err)
	}
	post := func(ep *core.Endpoint, n int) {
		for i := 0; i < n; i++ {
			m, err := command.AllocBuffer()
			if err != nil {
				log.Fatal(err)
			}
			if err := ep.Post(m); err != nil {
				log.Fatal(err)
			}
		}
	}
	post(tracks, 15)
	post(maint, 4) // maintenance is allowed to lose data under load
	names.Register("cmd.tracks", tracks.Addr())
	names.Register("cmd.maint", maint.Addr())

	var wg sync.WaitGroup
	var order []string
	var orderMu sync.Mutex
	record := func(class string) {
		orderMu.Lock()
		order = append(order, class)
		orderMu.Unlock()
	}

	// High-priority track consumer: blocked on the real-time semaphore;
	// the kernel presents it to the scheduler ahead of the maintenance
	// thread when both have work.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for got := 0; got < trackCount; got++ {
			m, err := tracks.ReceiveBlock(9) // high priority
			if err != nil {
				log.Fatal(err)
			}
			record("track")
			if tracks.Post(m) != nil {
				command.FreeBuffer(m)
			}
		}
	}()
	// Low-priority maintenance consumer.
	stopMaint := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopMaint:
				return
			default:
			}
			if m, ok := maint.Receive(); ok {
				record("maint")
				if maint.Post(m) != nil {
					command.FreeBuffer(m)
				}
			} else {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	// Sensor: one outbox per class (different endpoints — multithreaded
	// applications avoid contention by splitting endpoints).
	trackOut, err := msglib.NewOutbox(sensor, 16, 16)
	if err != nil {
		log.Fatal(err)
	}
	maintOut, err := msglib.NewOutbox(sensor, 16, 16)
	if err != nil {
		log.Fatal(err)
	}
	trackAddr, _ := names.Lookup("cmd.tracks")
	maintAddr, _ := names.Lookup("cmd.maint")

	// Flood maintenance first, then emit the urgent tracks.
	for i := 0; i < maintFlood; i++ {
		payload := fmt.Sprintf("maint: pump %d vibration nominal", i)
		for maintOut.Send(maintAddr, []byte(payload)) != nil {
			time.Sleep(100 * time.Microsecond)
		}
	}
	for i := 0; i < trackCount; i++ {
		payload := fmt.Sprintf("track: contact %d bearing %03d range %dnm", i, (i*37)%360, 40-i)
		for trackOut.Send(trackAddr, []byte(payload)) != nil {
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Wait for all tracks; then stop the maintenance consumer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(2 * time.Second)
		close(stopMaint)
	}()
	timeout := time.After(10 * time.Second)
	select {
	case <-done:
	case <-timeout:
		log.Fatal("radar: timed out")
	}

	orderMu.Lock()
	trackSeen, maintSeen := 0, 0
	for _, c := range order {
		if c == "track" {
			trackSeen++
		} else {
			maintSeen++
		}
	}
	orderMu.Unlock()
	fmt.Printf("tracks delivered:       %d/%d (drops on track endpoint: %d)\n",
		trackSeen, trackCount, tracks.Drops())
	fmt.Printf("maintenance delivered:  %d/%d (drops on maint endpoint: %d — its own budget, not the tracks')\n",
		maintSeen, maintFlood, maint.Drops())
	if tracks.Drops() != 0 {
		log.Fatal("resource isolation failed: track class lost messages")
	}
	fmt.Println("resource isolation held: the maintenance flood could not consume track buffers")
}
