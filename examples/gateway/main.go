// Gateway: the client edge plane (internal/gateway, cmd/flipcgw). A
// process that is not a fabric node — no commbuf endpoints, no fixed
// buffer budget, maybe not even on the mesh — talks FLIPC through a
// gateway over plain TCP: a length-prefixed framing protocol with
// hello/subscribe/publish/deliver ops, wildcard topic patterns
// ("metrics.*"), and per-client presence leases. The gateway
// multiplexes every client onto one commbuf endpoint per priority
// class, so fabric resources scale with gateways, not clients, and a
// dead gateway's whole client population is swept by lease expiry.
//
// This example runs the full stack in one process: an in-process
// fabric, a gateway Mux served on a loopback TCP listener, and two
// clients — a sensor publishing readings through the gateway, and a
// monitor subscribed to the wildcard — plus a fabric-side subscriber
// proving gateway clients and native nodes share one topic plane.
//
//	go run ./examples/gateway
//
// Against a live cluster, run `flipcd -registry` and `flipcgw`
// (see the README gateway quickstart), then point gateway.Dial at the
// flipcgw -clients address instead.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"flipc/internal/core"
	"flipc/internal/gateway"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/topic"
	"flipc/internal/wire"
)

func main() {
	// The fabric: a gateway node and a native node, one registry.
	fabric := interconnect.NewFabric(1024)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{
			Node: id, MessageSize: 128, NumBuffers: 512,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		d.Start()
		return d
	}
	gwNode, native := newNode(0), newNode(1)
	defer gwNode.Close()
	defer native.Close()
	dir := topic.LocalDirectory{R: nameservice.NewTopicRegistry()}

	// The gateway: a Mux on the gateway node, served over loopback TCP
	// exactly as cmd/flipcgw does it.
	mux, err := gateway.NewMux(gwNode, gateway.Config{Name: "gw-demo", Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := gateway.NewServer(mux)
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("gateway %q serving on %s\n", "gw-demo", ln.Addr())

	// A native subscriber on the fabric node: exact subscription to one
	// of the topics the sensor will publish — gateway clients and
	// native nodes meet on the same topic plane.
	nativeSub, err := topic.NewSubscriber(native, dir, "metrics.gps", topic.Normal, 16, 16)
	if err != nil {
		log.Fatal(err)
	}

	// The monitor client: wildcard subscription over TCP. One segment
	// ("metrics.*") — gps, cpu, whatever appears under metrics.
	monitor, err := gateway.Dial(ln.Addr().String(), "monitor-1")
	if err != nil {
		log.Fatal(err)
	}
	defer monitor.Close()
	if err := monitor.Subscribe("metrics.*", topic.Normal); err != nil {
		log.Fatal(err)
	}
	// A ping round-trip doubles as a subscribe barrier: the gateway
	// processes each connection's frames in order.
	if err := monitor.Ping(nil); err != nil {
		log.Fatal(err)
	}
	if fr, err := monitor.Recv(); err != nil || fr.Op != gateway.OpPong {
		log.Fatalf("ping barrier: %+v %v", fr, err)
	}

	// The sensor client: plain publishes through the gateway.
	sensor, err := gateway.Dial(ln.Addr().String(), "sensor-7")
	if err != nil {
		log.Fatal(err)
	}
	defer sensor.Close()
	for i := 0; i < 3; i++ {
		gps := fmt.Sprintf("fix %d: 40.71,-74.00", i)
		if err := sensor.Publish("metrics.gps", topic.Normal, []byte(gps)); err != nil {
			log.Fatal(err)
		}
		if err := sensor.Publish("metrics.cpu", topic.Normal, []byte("load 0.42")); err != nil {
			log.Fatal(err)
		}
	}

	// The monitor sees both topics through one wildcard...
	monitor.SetReadDeadline(time.Now().Add(2 * time.Second))
	for got := 0; got < 6; got++ {
		fr, err := monitor.RecvDeliver()
		if err != nil {
			log.Fatalf("monitor: %v after %d deliveries", err, got)
		}
		fmt.Printf("monitor  <- %-11s [%s] %q\n", fr.Name, topic.Class(fr.Class), fr.Payload)
	}

	// ...and the native subscriber sees the gps stream without knowing
	// gateways exist.
	deadline := time.Now().Add(2 * time.Second)
	for got := 0; got < 3; {
		payload, _, ok := nativeSub.Receive()
		if !ok {
			if time.Now().After(deadline) {
				log.Fatalf("native subscriber: %d of 3 deliveries", got)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		fmt.Printf("native   <- metrics.gps %q\n", payload)
		got++
	}

	// The presence ledger: every connected client is a leased entry.
	fmt.Printf("presence: %v\n", dir.R.PresenceByGateway())
	h := mux.Health()
	fmt.Printf("gateway health: conns=%d leases=%d patterns=%d\n", h.Conns, h.Presence, h.Patterns)
}
