// RPC: the paper's first static flow-control example — "an RPC
// interaction structure with a fixed set of clients can statically
// determine the number of buffers needed based on the maximum number of
// clients" (§Message Transfer). No runtime flow control, no drops, by
// construction.
//
// Three clients issue requests to one server; the server sizes its
// receive window with flowctl.RPCBuffers and never discards a request.
//
//	go run ./examples/rpc
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"flipc/internal/core"
	"flipc/internal/flowctl"
	"flipc/internal/interconnect"
	"flipc/internal/msglib"
	"flipc/internal/nameservice"
	"flipc/internal/wire"
)

const (
	numClients        = 3
	outstandingPerCli = 2 // each client limits itself to 2 in-flight RPCs
	requestsPerClient = 20
)

func main() {
	fabric := interconnect.NewFabric(256)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{Node: id, MessageSize: 128, NumBuffers: 64}, tr)
		if err != nil {
			log.Fatal(err)
		}
		d.Start()
		return d
	}
	server := newNode(0)
	defer server.Close()
	clients := make([]*core.Domain, numClients)
	for i := range clients {
		clients[i] = newNode(wire.NodeID(i + 1))
		defer clients[i].Close()
	}
	names := nameservice.New()

	// Server: the static sizing rule makes the window exact.
	window := flowctl.RPCBuffers(numClients, outstandingPerCli) // 6 buffers
	inbox, err := msglib.NewInbox(server, 16, window)
	if err != nil {
		log.Fatal(err)
	}
	out, err := msglib.NewOutbox(server, 16, window)
	if err != nil {
		log.Fatal(err)
	}
	names.Register("rpc.server", inbox.Addr())

	// Server loop: request payload = reply addr (4B) | request id (4B).
	go func() {
		for {
			payload, _, err := inbox.ReceiveBlock(5)
			if err != nil {
				return // domain closed
			}
			if len(payload) < 8 {
				continue
			}
			replyTo := wire.Addr(binary.BigEndian.Uint32(payload[:4]))
			id := binary.BigEndian.Uint32(payload[4:8])
			reply := make([]byte, 8)
			binary.BigEndian.PutUint32(reply[:4], id)
			binary.BigEndian.PutUint32(reply[4:], id*id) // the "computation"
			for out.Send(replyTo, reply) != nil {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	serverAddr, _ := names.WaitFor("rpc.server", time.Second)
	var wg sync.WaitGroup
	for c := 0; c < numClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := clients[c]
			// Each client bounds itself to outstandingPerCli in-flight
			// requests — that self-limit is what the server's static
			// window depends on.
			replies, err := msglib.NewInbox(d, 8, outstandingPerCli)
			if err != nil {
				log.Fatal(err)
			}
			reqs, err := msglib.NewOutbox(d, 8, outstandingPerCli)
			if err != nil {
				log.Fatal(err)
			}
			inFlight := 0
			next := uint32(0)
			got := 0
			for got < requestsPerClient {
				for inFlight < outstandingPerCli && int(next) < requestsPerClient {
					req := make([]byte, 8)
					binary.BigEndian.PutUint32(req[:4], uint32(replies.Addr()))
					binary.BigEndian.PutUint32(req[4:], next)
					if err := reqs.Send(serverAddr, req); err != nil {
						time.Sleep(50 * time.Microsecond)
						continue
					}
					next++
					inFlight++
				}
				payload, _, ok := replies.Receive()
				if !ok {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				id := binary.BigEndian.Uint32(payload[:4])
				sq := binary.BigEndian.Uint32(payload[4:])
				if sq != id*id {
					log.Fatalf("client %d: bad reply %d for request %d", c, sq, id)
				}
				inFlight--
				got++
			}
			if replies.Drops() != 0 {
				log.Fatalf("client %d: reply drops = %d", c, replies.Drops())
			}
		}()
	}
	wg.Wait()
	fmt.Printf("all %d clients completed %d RPCs each\n", numClients, requestsPerClient)
	fmt.Printf("server window: %d buffers (RPCBuffers(%d clients, %d outstanding)); request drops: %d\n",
		window, numClients, outstandingPerCli, inbox.Drops())
	if inbox.Drops() != 0 {
		log.Fatal("static sizing failed: the server dropped requests")
	}
	fmt.Println("static flow control held: no runtime flow control, zero drops")
}
