// Pub/sub: topic-based fanout with prioritized classes
// (internal/topic) on an in-process interconnect.
//
// One publisher node fans telemetry out to three subscriber endpoints
// spread over two nodes; a control-class topic shares the cluster and
// keeps its latency edge through the engine's priority policy. Slow
// subscribers lose messages — counted, never silently — which is
// FLIPC's optimistic discard rule applied one-to-many.
//
//	go run ./examples/pubsub
package main

import (
	"fmt"
	"log"
	"time"

	"flipc/internal/core"
	"flipc/internal/engine"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/topic"
	"flipc/internal/wire"
)

func main() {
	fabric := interconnect.NewFabric(1024)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{
			Node:        id,
			MessageSize: 128,
			NumBuffers:  256,
			// PolicyPriority lets the control class overtake bulk
			// traffic inside the engine's send pass.
			Engine: engine.Config{Policy: engine.PolicyPriority},
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		d.Start()
		return d
	}
	pubNode := newNode(0)
	defer pubNode.Close()
	subA := newNode(1)
	defer subA.Close()
	subB := newNode(2)
	defer subB.Close()

	// The topic registry is the directory's pub/sub half: topic name →
	// subscriber set, lease-based, generation-stamped. In a real
	// cluster it lives on the registry node behind nameservice.Server
	// (use topic.RemoteDirectory); in-process the local adapter is
	// enough.
	dir := topic.LocalDirectory{R: nameservice.NewTopicRegistry()}

	// Subscribers join with a class and a private buffer pool — the
	// topic's receive-side credit (size it with SubscriberBuffers).
	mkSub := func(d *core.Domain, topicName string, class topic.Class) *topic.Subscriber {
		s, err := topic.NewSubscriber(d, dir, topicName, class, 32, 32)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	telemetrySubs := []*topic.Subscriber{
		mkSub(subA, "telemetry", topic.Normal),
		mkSub(subA, "telemetry", topic.Normal),
		mkSub(subB, "telemetry", topic.Normal),
	}
	alarmSub := mkSub(subB, "alarms", topic.Control)

	// Publishers fan one Publish out to every subscriber; the fanout
	// plan is cached and rebuilt only when the membership generation
	// moves.
	telemetryPub, err := topic.NewPublisher(pubNode, dir, topic.PublisherConfig{
		Topic: "telemetry", Class: topic.Normal})
	if err != nil {
		log.Fatal(err)
	}
	alarmPub, err := topic.NewPublisher(pubNode, dir, topic.PublisherConfig{
		Topic: "alarms", Class: topic.Control})
	if err != nil {
		log.Fatal(err)
	}

	const rounds = 50
	for i := 0; i < rounds; i++ {
		if _, err := telemetryPub.Publish([]byte(fmt.Sprintf("sample %d", i))); err != nil {
			log.Fatal(err)
		}
		// A periodic producer: the pacing is the static flow control —
		// burst past the window and the excess becomes counted drops.
		time.Sleep(200 * time.Microsecond)
	}
	if _, err := alarmPub.Publish([]byte("overtemp on node 2")); err != nil {
		log.Fatal(err)
	}

	// The control-class receive blocks at a higher scheduler priority
	// than any bulk consumer would.
	alarm, flags, err := alarmSub.ReceiveBlock()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alarm (class %v): %q\n", topic.ClassFromFlags(flags), alarm)

	// Drain the telemetry subscribers and show the conservation law:
	// every fanned-out message is delivered or counted at one ledger.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var accounted uint64
		for _, s := range telemetrySubs {
			for {
				if _, _, ok := s.Receive(); !ok {
					break
				}
			}
			accounted += s.Received() + s.Drops()
		}
		if accounted+telemetryPub.Dropped() == telemetryPub.Published()*uint64(len(telemetrySubs)) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var delivered, recvDrops uint64
	for _, s := range telemetrySubs {
		delivered += s.Received()
		recvDrops += s.Drops()
	}
	fmt.Printf("telemetry: published %d x %d subscribers = %d fanned out\n",
		telemetryPub.Published(), len(telemetrySubs), telemetryPub.Published()*uint64(len(telemetrySubs)))
	fmt.Printf("delivered %d, receiver-dropped %d, publisher-dropped %d — all accounted\n",
		delivered, recvDrops, telemetryPub.Dropped())
}
