// Console: endpoint groups (paper §Architecture and Design). An
// operator console consumes three sensor streams — radar, IFF, ESM —
// each on its own endpoint with its own buffer budget, through a single
// endpoint group: "FLIPC supports a receive operation that retrieves a
// message from an endpoint if there is an available message on any
// endpoint in the group", implemented entirely in the library because
// the resource-control model ties buffers to endpoints and the queues
// cannot be merged. The blocking form wakes through the real-time
// semaphore path.
//
//	go run ./examples/console
package main

import (
	"fmt"
	"log"
	"time"

	"flipc/internal/core"
	"flipc/internal/interconnect"
	"flipc/internal/msglib"
	"flipc/internal/nameservice"
	"flipc/internal/wire"
)

var streams = []struct {
	name string
	msgs int
}{
	{"radar", 6},
	{"iff", 4},
	{"esm", 5},
}

func main() {
	fabric := interconnect.NewFabric(256)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{Node: id, MessageSize: 96, NumBuffers: 48}, tr)
		if err != nil {
			log.Fatal(err)
		}
		d.Start()
		return d
	}
	console := newNode(0)
	defer console.Close()
	names := nameservice.New()

	// One endpoint per stream, each with its own buffers (a flood on
	// one stream cannot starve the others), combined into a group.
	eps := make([]*core.Endpoint, len(streams))
	for i, s := range streams {
		ep, err := console.NewRecvEndpoint(8)
		if err != nil {
			log.Fatal(err)
		}
		for b := 0; b < 6; b++ {
			m, err := console.AllocBuffer()
			if err != nil {
				log.Fatal(err)
			}
			if err := ep.Post(m); err != nil {
				log.Fatal(err)
			}
		}
		names.Register("console."+s.name, ep.Addr())
		eps[i] = ep
	}
	group, err := console.NewGroup(eps...)
	if err != nil {
		log.Fatal(err)
	}

	// Each sensor is its own node with its own outbox.
	total := 0
	for i, s := range streams {
		s := s
		d := newNode(wire.NodeID(i + 1))
		defer d.Close()
		out, err := msglib.NewOutbox(d, 8, 8)
		if err != nil {
			log.Fatal(err)
		}
		dst, err := names.Lookup("console." + s.name)
		if err != nil {
			log.Fatal(err)
		}
		total += s.msgs
		go func() {
			for m := 0; m < s.msgs; m++ {
				payload := fmt.Sprintf("%s report %d", s.name, m)
				for out.Send(dst, []byte(payload)) != nil {
					time.Sleep(100 * time.Microsecond)
				}
				time.Sleep(time.Duration(1+m%3) * time.Millisecond)
			}
		}()
	}

	// The console thread blocks on the whole group and attributes each
	// message to its stream — one thread, many prioritized sources.
	perStream := map[*core.Endpoint]int{}
	for got := 0; got < total; got++ {
		msg, from, err := group.ReceiveBlock(5)
		if err != nil {
			log.Fatal(err)
		}
		perStream[from]++
		if from.Post(msg) != nil {
			console.FreeBuffer(msg)
		}
	}
	for i, s := range streams {
		n := perStream[eps[i]]
		fmt.Printf("%-6s %d/%d messages via group (drops %d)\n", s.name, n, s.msgs, eps[i].Drops())
		if n != s.msgs {
			log.Fatalf("%s lost messages", s.name)
		}
	}
	fmt.Printf("group receive-any delivered all %d messages across %d endpoints; total drops %d\n",
		total, len(eps), group.Drops())
}
