// Periodic: the paper's second static flow-control example — "an
// application made up of strictly periodic components can often
// determine its worst case buffering needs in advance based on the
// maximum number of messages sent per time period" (§Message Transfer).
//
// Three periodic producers (a process-control flavor: flow, pressure,
// temperature loops) send fixed-rate samples to one historian. The
// historian drains once per period, so its worst case is exactly one
// period's production — flowctl.PeriodicBuffers(msgsPerPeriod, 1).
//
//	go run ./examples/periodic
package main

import (
	"fmt"
	"log"
	"time"

	"flipc/internal/core"
	"flipc/internal/flowctl"
	"flipc/internal/interconnect"
	"flipc/internal/msglib"
	"flipc/internal/nameservice"
	"flipc/internal/wire"
)

// Each producer's messages per period.
var producers = []struct {
	name string
	rate int
}{
	{"flow-loop", 4},
	{"pressure-loop", 3},
	{"temp-loop", 2},
}

const periods = 25

func main() {
	fabric := interconnect.NewFabric(256)
	newNode := func(id wire.NodeID) *core.Domain {
		tr, err := fabric.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		d, err := core.NewDomain(core.Config{Node: id, MessageSize: 96, NumBuffers: 64}, tr)
		if err != nil {
			log.Fatal(err)
		}
		d.Start()
		return d
	}
	historian := newNode(0)
	defer historian.Close()

	perPeriod := 0
	for _, p := range producers {
		perPeriod += p.rate
	}
	// Worst case: producers emit a full period's batch before the
	// historian's once-per-period drain runs.
	window := flowctl.PeriodicBuffers(perPeriod, 1)
	inbox, err := msglib.NewInbox(historian, 16, window)
	if err != nil {
		log.Fatal(err)
	}
	names := nameservice.New()
	names.Register("plant.historian", inbox.Addr())
	dst, _ := names.Lookup("plant.historian")

	// Producers on their own nodes.
	type prod struct {
		out  *msglib.Outbox
		rate int
		name string
	}
	var ps []prod
	for i, p := range producers {
		d := newNode(wire.NodeID(i + 1))
		defer d.Close()
		out, err := msglib.NewOutbox(d, 8, p.rate)
		if err != nil {
			log.Fatal(err)
		}
		ps = append(ps, prod{out: out, rate: p.rate, name: p.name})
	}

	received := 0
	for period := 0; period < periods; period++ {
		// Every producer emits its per-period quota.
		for _, p := range ps {
			for s := 0; s < p.rate; s++ {
				payload := fmt.Sprintf("%s p%d s%d", p.name, period, s)
				for p.out.Send(dst, []byte(payload)) != nil {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}
		// Historian drains once per period (a strictly periodic
		// consumer). Worst case bound guarantees nothing was dropped.
		deadline := time.Now().Add(time.Second)
		drained := 0
		for drained < perPeriod && time.Now().Before(deadline) {
			if _, _, ok := inbox.Receive(); ok {
				drained++
				received++
			} else {
				time.Sleep(50 * time.Microsecond)
			}
		}
		if drained != perPeriod {
			log.Fatalf("period %d: drained %d/%d", period, drained, perPeriod)
		}
	}

	want := perPeriod * periods
	fmt.Printf("historian window: %d buffers (PeriodicBuffers(%d msgs/period, 1 period))\n", window, perPeriod)
	fmt.Printf("samples received: %d/%d, drops: %d\n", received, want, inbox.Drops())
	if received != want || inbox.Drops() != 0 {
		log.Fatal("worst-case sizing failed")
	}
	fmt.Println("strictly periodic structure held: worst-case buffering, no runtime flow control, zero drops")
}
