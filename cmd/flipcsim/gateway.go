package main

import (
	"bytes"
	"fmt"
	"time"

	"flipc/internal/gateway"
	"flipc/internal/nameservice"
	"flipc/internal/sim"
	"flipc/internal/simcluster"
	"flipc/internal/stats"
	"flipc/internal/topic"
)

// gatewayOpts parameterizes the -gateway scenario.
type gatewayOpts struct {
	nodes   int
	msgSize int
	msgs    int           // control publishes per phase
	gap     time.Duration // publish period (virtual)
	poll    time.Duration
	window  int
	clients int // clients per gateway
}

// nGateways is the scenario's gateway count: three independent edge
// multiplexers, one of which is killed mid-traffic.
const nGateways = 3

// simClient is one edge client: it speaks the wire framing protocol in
// both directions — requests are encoded with the codec and fed through
// the scanner into HandleFrame, deliveries are popped as raw frames and
// re-scanned/decoded — so every message crosses the client framing
// boundary exactly as it would over TCP.
type simClient struct {
	c       *gateway.Client
	decoded uint64 // OpDeliver frames decoded back out of the framing
	other   uint64 // anything else that arrived (must stay zero here)
	lat     []sim.Time
	measure bool // laggard clients skew queue-wait, not fabric latency
}

// runGateway is the client edge plane failure scenario: three gateways
// multiplex simulated clients onto the fabric, every client subscribed
// to the same wildcard pattern ("ctl.*") and recorded as a leased
// presence entry; a fabric-side publisher drives tagged control
// traffic through the pattern plane. Mid-way through phase two, one
// gateway is killed cold — its pump and housekeeping stop, its clients
// are never detached. The scenario enforces the edge-plane contract:
//
//   - zero stranded presence: the dead gateway's clients and pattern
//     subscriptions disappear on lease expiry alone, with no cleanup
//     protocol, while survivors' leases ride through every sweep;
//   - failure isolation: the surviving gateways' ctl p99 stays within
//     1.2x their own pre-kill baseline;
//   - exact conservation across the client framing boundary, per
//     gateway: matched == decoded-by-clients + dropped + throttled,
//     with decoded equal to the mux's own delivered ledger — the
//     framing neither invents nor loses frames;
//   - the backpressure discipline is exercised for real: a laggard
//     client on a surviving gateway must take counted drops and
//     throttles without disturbing its neighbors' ledgers.
func runGateway(o gatewayOpts) error {
	if o.nodes < nGateways+1 {
		return fmt.Errorf("-gateway needs at least %d nodes (%d gateways + publisher)", nGateways+1, nGateways)
	}
	if o.clients < 2 {
		return fmt.Errorf("-gateway needs at least 2 clients per gateway")
	}
	scfg := simcluster.Config{
		Nodes:        o.nodes,
		MessageSize:  o.msgSize,
		NumBuffers:   16 * o.window,
		PollInterval: sim.Time(o.poll.Nanoseconds()),
	}
	c, err := simcluster.New(scfg)
	if err != nil {
		return err
	}
	defer c.Close()

	// One shared registry (the edge plane's directory), gateways on
	// nodes 0..2, the publisher on node 3.
	reg := nameservice.NewTopicRegistry()
	dir := topic.LocalDirectory{R: reg}

	var (
		muxes [nGateways]*gateway.Mux
		alive [nGateways]bool
		names [nGateways]string
	)
	for g := 0; g < nGateways; g++ {
		names[g] = fmt.Sprintf("gw-%d", g)
		muxes[g], err = gateway.NewMux(c.Domains[g], gateway.Config{
			Name:         names[g],
			Dir:          dir,
			InboxBuffers: o.window,
			ClientQueue:  8,
			ThrottleAt:   8,
		})
		if err != nil {
			return err
		}
		alive[g] = true
	}

	// sendFrame pushes one request across the framing boundary: encode,
	// re-scan (exactly what the TCP reader does), dispatch.
	sendFrame := func(g int, cl *gateway.Client, fr gateway.Frame) error {
		enc, err := gateway.AppendFrame(nil, fr)
		if err != nil {
			return err
		}
		body, err := gateway.NewScanner(bytes.NewReader(enc)).Next()
		if err != nil {
			return err
		}
		muxes[g].HandleFrame(cl, body)
		return nil
	}

	// Clients: o.clients per gateway, all subscribed to "ctl.*" on the
	// control class. Client 0 of gateway 0 is the laggard: it drains
	// two hundred times slower than its queue fills, so the bounded
	// queue must shed with counted drops and throttles.
	const pattern = "ctl.*"
	clientsOf := [nGateways][]*simClient{}
	for g := 0; g < nGateways; g++ {
		for i := 0; i < o.clients; i++ {
			cl := &simClient{c: muxes[g].Attach(), measure: true}
			if err := sendFrame(g, cl.c, gateway.Frame{
				Op: gateway.OpHello, Ver: 1, Name: fmt.Sprintf("c%d-%d", g, i),
			}); err != nil {
				return err
			}
			if err := sendFrame(g, cl.c, gateway.Frame{
				Op: gateway.OpSub, Class: uint8(topic.Control), Name: pattern,
			}); err != nil {
				return err
			}
			if b, ok := cl.c.PopOut(); ok {
				return fmt.Errorf("client %d/%d refused at setup: % x", g, i, b)
			}
			clientsOf[g] = append(clientsOf[g], cl)
		}
	}
	laggard := clientsOf[0][0]
	laggard.measure = false

	if reg.PresenceCount() != nGateways*o.clients {
		return fmt.Errorf("presence after setup: %d, want %d", reg.PresenceCount(), nGateways*o.clients)
	}
	if reg.PatternCount() != nGateways {
		return fmt.Errorf("pattern pairs after setup: %d, want %d", reg.PatternCount(), nGateways)
	}

	// Fabric-side publisher on a pattern-only control topic: nobody
	// subscribes to "ctl.rate" exactly, the whole fanout plan comes
	// from the wildcard plane.
	const ctlTopic = "ctl.rate"
	pub, err := topic.NewPublisher(c.Domains[nGateways], dir, topic.PublisherConfig{
		Topic: ctlTopic, Class: topic.Control, Window: o.window, RefreshEvery: 8,
	})
	if err != nil {
		return err
	}
	if pub.PatternSubscribers() != nGateways {
		return fmt.Errorf("pattern plan: %d gateways, want %d", pub.PatternSubscribers(), nGateways)
	}

	// Tickers on the virtual clock: gateway pumps every poll,
	// housekeeping (lease renewal, saturation probe) every 200 polls,
	// registry sweep epochs every 1000 polls — a dead gateway's leases
	// expire after DefaultTopicTTL missed sweeps with no other party
	// lifting a finger.
	poll := sim.Time(o.poll.Nanoseconds())
	for g := 0; g < nGateways; g++ {
		g := g
		c.Clock.NewTicker(poll, func() {
			if alive[g] {
				muxes[g].Pump()
			}
		})
		c.Clock.NewTicker(200*poll, func() {
			if alive[g] {
				muxes[g].Housekeeping()
			}
		})
	}
	epochEvery := 1000 * poll
	c.Clock.NewTicker(epochEvery, func() { reg.Advance() })

	// Client drain loops: decode every popped frame back through the
	// scanner — the receive half of the framing boundary.
	sent := map[int]sim.Time{}
	drain := func(cl *simClient) {
		for {
			b, ok := cl.c.PopOut()
			if !ok {
				return
			}
			body, err := gateway.NewScanner(bytes.NewReader(b)).Next()
			if err != nil {
				fatal(fmt.Errorf("unscannable frame from gateway: %v", err))
			}
			fr, err := gateway.DecodeBody(body)
			if err != nil {
				fatal(fmt.Errorf("undecodable frame from gateway: %v", err))
			}
			if fr.Op != gateway.OpDeliver {
				cl.other++
				continue
			}
			cl.decoded++
			if len(fr.Payload) >= 2 && cl.measure {
				tag := int(fr.Payload[0])<<8 | int(fr.Payload[1])
				if t0, ok := sent[tag]; ok {
					cl.lat = append(cl.lat, c.Clock.Now()-t0)
				}
			}
		}
	}
	for g := 0; g < nGateways; g++ {
		for _, cl := range clientsOf[g] {
			cl := cl
			period := poll
			if cl == laggard {
				period = 200 * poll
			}
			c.Clock.NewTicker(period, func() { drain(cl) })
		}
	}

	// Tagged traffic, one global ledger: tags resolve decode times back
	// to the virtual publish instant.
	nextTag := 0
	publish := func() {
		var buf [2]byte
		buf[0], buf[1] = byte(nextTag>>8), byte(nextTag)
		sent[nextTag] = c.Clock.Now()
		nextTag++
		if _, err := pub.Publish(buf[:]); err != nil {
			fatal(err)
		}
	}

	// Quiesce: run until the edge ledgers stop moving and every live
	// queue has drained (the laggard needs whole drain periods).
	gap := sim.Time(o.gap.Nanoseconds())
	settle := 1000 * poll
	quiesce := func(deadline sim.Time) {
		c.Clock.RunUntil(deadline)
		last := ^uint64(0)
		for i := 0; i < 500; i++ {
			var cur uint64
			var queued int
			for g := 0; g < nGateways; g++ {
				st := muxes[g].Stats()
				cur += st.Received + st.Matched
				for _, cl := range clientsOf[g] {
					cur += cl.decoded
					queued += cl.c.Queued()
				}
			}
			if queued == 0 && cur == last {
				return
			}
			last = cur
			deadline += settle
			c.Clock.RunUntil(deadline)
		}
	}

	// Phase one: traffic through all three gateways, establishing each
	// gateway's own latency baseline.
	start := c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		c.Clock.At(start+sim.Time(i)*gap, publish)
	}
	quiesce(start + sim.Time(o.msgs)*gap + settle)
	before := [nGateways]stats.Summary{}
	for g := 0; g < nGateways; g++ {
		sum, err := stats.Summarize(collectClientLatencies(clientsOf[g]))
		if err != nil {
			return fmt.Errorf("gateway %d baseline: %w", g, err)
		}
		before[g] = sum
	}

	// Phase two: same traffic, with gateway 1 killed cold mid-phase —
	// no detach, no unsubscribe, no presence drop. Everything it held
	// must die by lease expiry alone.
	const victim = 1
	start = c.Clock.Now() + gap
	killAt := start + sim.Time(o.msgs/2)*gap + gap/2
	c.Clock.At(killAt, func() { alive[victim] = false })
	for i := 0; i < o.msgs; i++ {
		c.Clock.At(start+sim.Time(i)*gap, publish)
	}
	quiesce(start + sim.Time(o.msgs)*gap + settle)
	after := [nGateways]stats.Summary{}
	for g := 0; g < nGateways; g++ {
		sum, err := stats.Summarize(collectClientLatencies(clientsOf[g]))
		if err != nil {
			return fmt.Errorf("gateway %d phase two: %w", g, err)
		}
		after[g] = sum
	}

	// Let the lease sweeps run: DefaultTopicTTL epochs plus slack. The
	// survivors keep renewing underneath; the victim cannot.
	c.Clock.RunUntil(c.Clock.Now() + sim.Time(nameservice.DefaultTopicTTL+3)*epochEvery)

	fmt.Printf("flipcsim -gateway: %d nodes, %d gateways, %d clients each, poll %v, gap %v\n",
		o.nodes, nGateways, o.clients, o.poll, o.gap)

	// Zero stranded presence: the victim's clients are gone from the
	// registry, the survivors' full populations remain.
	byGW := reg.PresenceByGateway()
	if n := byGW[names[victim]]; n != 0 {
		return fmt.Errorf("%d presence entries stranded for dead %s after lease sweep", n, names[victim])
	}
	for g := 0; g < nGateways; g++ {
		if g == victim {
			continue
		}
		if byGW[names[g]] != o.clients {
			return fmt.Errorf("surviving %s lost presence across the sweep: %d of %d", names[g], byGW[names[g]], o.clients)
		}
	}
	if reg.PresenceCount() != (nGateways-1)*o.clients {
		return fmt.Errorf("registry presence %d, want %d", reg.PresenceCount(), (nGateways-1)*o.clients)
	}
	if reg.PatternCount() != nGateways-1 {
		return fmt.Errorf("registry pattern pairs %d after sweep, want %d", reg.PatternCount(), nGateways-1)
	}
	fmt.Printf("lease sweep: %s fully expired (presence %d, patterns %d; survivors intact)\n",
		names[victim], byGW[names[victim]], reg.PatternCount())

	// Conservation across the client framing boundary, per gateway:
	// every matched frame is decoded by a client or counted against
	// one, and the framing layer's view agrees exactly with the mux
	// ledger. Holds for the victim too — its counters just froze.
	for g := 0; g < nGateways; g++ {
		st := muxes[g].Stats()
		var decoded, other, delivered, dropped, throttled uint64
		var queued int
		for _, cl := range clientsOf[g] {
			d, dr, th := cl.c.Ledgers()
			delivered += d
			dropped += dr
			throttled += th
			decoded += cl.decoded
			other += cl.other
			queued += cl.c.Queued()
		}
		fmt.Printf("%s: received %d matched %d -> decoded %d dropped %d throttled %d (inbox drops %d)\n",
			names[g], st.Received, st.Matched, decoded, dropped, throttled,
			muxes[g].InboxDrops(int(topic.Control)))
		if other != 0 {
			return fmt.Errorf("%s clients decoded %d non-deliver frames", names[g], other)
		}
		if queued != 0 {
			return fmt.Errorf("%s still holds %d queued frames after quiesce", names[g], queued)
		}
		if decoded != delivered {
			return fmt.Errorf("%s framing boundary drifted: clients decoded %d, mux delivered %d", names[g], decoded, delivered)
		}
		if st.Matched != decoded+dropped+throttled {
			return fmt.Errorf("%s conservation violated: matched %d != decoded %d + dropped %d + throttled %d",
				names[g], st.Matched, decoded, dropped, throttled)
		}
		if st.Matched != st.Received*uint64(o.clients) {
			return fmt.Errorf("%s wildcard fanout short: matched %d of received %d x %d clients",
				names[g], st.Matched, st.Received, o.clients)
		}
		if st.Unmatched != 0 || st.BadFrames != 0 {
			return fmt.Errorf("%s saw %d unmatched and %d bad frames", names[g], st.Unmatched, st.BadFrames)
		}
	}
	fmt.Println("conservation: ok across the framing boundary on every gateway")

	// The backpressure discipline fired on the laggard — counted, not
	// silent — and only on the laggard.
	if o.msgs >= 32 {
		_, lagDrop, lagThr := laggard.c.Ledgers()
		if lagDrop == 0 || lagThr == 0 {
			return fmt.Errorf("laggard escaped the queue bound: dropped %d throttled %d", lagDrop, lagThr)
		}
		for g := 0; g < nGateways; g++ {
			for i, cl := range clientsOf[g] {
				if cl == laggard {
					continue
				}
				if _, dr, th := cl.c.Ledgers(); dr != 0 || th != 0 {
					return fmt.Errorf("client %d/%d took collateral loss from the laggard: dropped %d throttled %d", g, i, dr, th)
				}
			}
		}
		fmt.Printf("backpressure: laggard shed %d drops + %d throttles; zero collateral on its neighbors\n", lagDrop, lagThr)
	}

	// The independence bound: surviving gateways' ctl p99 within 1.2x
	// their own baseline. The victim is reported but unbounded.
	for g := 0; g < nGateways; g++ {
		ratio := after[g].P99 / before[g].P99
		verdict := ""
		if g == victim {
			verdict = " (killed mid-phase; unbounded)"
		}
		fmt.Printf("%s ctl p99: %.2fµs -> %.2fµs (%.2fx)%s\n",
			names[g], before[g].P99, after[g].P99, ratio, verdict)
		if g != victim && ratio > 1.2 {
			return fmt.Errorf("surviving %s p99 degraded %.2fx across a foreign gateway kill (bound: 1.2x)", names[g], ratio)
		}
	}
	fmt.Println("isolation: ok (surviving gateways unperturbed by the kill)")
	return nil
}

func collectClientLatencies(clients []*simClient) []float64 {
	var out []float64
	for _, cl := range clients {
		for _, l := range cl.lat {
			out = append(out, l.Micros())
		}
		cl.lat = nil
	}
	return out
}
