package main

import (
	"fmt"
	"time"

	"flipc/internal/nameservice"
	"flipc/internal/sim"
	"flipc/internal/simcluster"
	"flipc/internal/stats"
	"flipc/internal/topic"
)

// slowsubOpts parameterizes the -slowsub scenario.
type slowsubOpts struct {
	msgSize    int
	msgs       int           // publishes per phase
	gap        time.Duration // publish period (virtual)
	poll       time.Duration
	window     int // subscriber inbox buffers / advertised credit cap
	slowFactor int // slow subscriber drains one message per slowFactor*gap
}

// slowsubLeg is one full cluster run: a baseline phase with only the
// fast subscriber, then a contended phase where a slow subscriber
// (draining at 1/slowFactor of the publish rate) joins the topic.
type slowsubLeg struct {
	baselineP99 float64 // fast subscriber one-way p99, no slow peer (µs)
	contendP99  float64 // fast subscriber one-way p99 beside the slow peer (µs)
	slowDrops   uint64  // slow subscriber inbox overruns
	slowRecv    uint64  // slow subscriber deliveries
	throttled   uint64  // publisher throttles (credit leg only)
}

// runSlowsub runs the scenario twice — credit off, then credit on — and
// checks the credit leg's guarantees: the slow subscriber's inbox drops
// fall to ~zero (the overrun converts into publisher-side throttles,
// deferral instead of loss) while the fast subscriber's tail latency
// stays within 1.2x of its no-slow-peer baseline.
func runSlowsub(o slowsubOpts) error {
	if o.slowFactor < 2 {
		return fmt.Errorf("-slowsub needs a slow factor >= 2")
	}
	uncredited, err := slowsubOnce(o, false)
	if err != nil {
		return fmt.Errorf("uncredited leg: %w", err)
	}
	credited, err := slowsubOnce(o, true)
	if err != nil {
		return fmt.Errorf("credited leg: %w", err)
	}

	fmt.Printf("flipcsim -slowsub: %d publishes/phase, gap %v, slow subscriber drains 1/%d, window %d\n",
		o.msgs, o.gap, o.slowFactor, o.window)
	fmt.Printf("%-12s %14s %14s %12s %12s %12s\n",
		"leg", "fast p99 µs", "vs baseline", "slow recv", "slow drops", "throttled")
	for _, l := range []struct {
		name string
		leg  *slowsubLeg
	}{{"credit-off", &uncredited}, {"credit-on", &credited}} {
		fmt.Printf("%-12s %14.2f %13.2fx %12d %12d %12d\n",
			l.name, l.leg.contendP99, l.leg.contendP99/l.leg.baselineP99,
			l.leg.slowRecv, l.leg.slowDrops, l.leg.throttled)
	}

	if uncredited.slowDrops == 0 {
		return fmt.Errorf("uncredited leg lost nothing — the slow subscriber was not actually overrun")
	}
	// The tentpole guarantee: overrun converts to throttles, not drops.
	if credited.slowDrops > uncredited.slowDrops/20 {
		return fmt.Errorf("credited slow subscriber still dropped %d (uncredited: %d)",
			credited.slowDrops, uncredited.slowDrops)
	}
	if credited.throttled == 0 {
		return fmt.Errorf("credited leg throttled nothing — credit never engaged")
	}
	ratio := credited.contendP99 / credited.baselineP99
	if ratio > 1.2 {
		return fmt.Errorf("fast subscriber p99 degraded %.2fx beside the slow peer (bound: 1.2x)", ratio)
	}
	fmt.Printf("slowsub: ok (credited drops %d -> throttles %d; fast p99 %.2fx baseline, bound 1.2x)\n",
		credited.slowDrops, credited.throttled, ratio)
	return nil
}

func slowsubOnce(o slowsubOpts, credit bool) (slowsubLeg, error) {
	var leg slowsubLeg
	scfg := simcluster.Config{
		Nodes:        3, // 0 publisher, 1 fast subscriber, 2 slow subscriber
		MessageSize:  o.msgSize,
		NumBuffers:   4*o.window + 32,
		PollInterval: sim.Time(o.poll.Nanoseconds()),
	}
	c, err := simcluster.New(scfg)
	if err != nil {
		return leg, err
	}
	defer c.Close()

	dir := topic.LocalDirectory{R: nameservice.NewTopicRegistry()}
	newSub := func(node int) (*topic.Subscriber, error) {
		if credit {
			return topic.NewSubscriberCredit(c.Domains[node], dir, "feed", topic.Normal,
				o.window, o.window, topic.CreditConfig{})
		}
		return topic.NewSubscriber(c.Domains[node], dir, "feed", topic.Normal, o.window, o.window)
	}
	fast, err := newSub(1)
	if err != nil {
		return leg, err
	}
	pub, err := topic.NewPublisher(c.Domains[0], dir, topic.PublisherConfig{
		Topic: "feed", Class: topic.Normal, Window: o.window,
		RefreshEvery: 16, Credit: credit, CreditBuffers: o.window,
	})
	if err != nil {
		return leg, err
	}

	// Positional latency, as in -topics: publishes stamp a tag, drain
	// tickers resolve it to one sample per delivery.
	sent := map[int]sim.Time{}
	nextTag := 0
	publish := func() {
		tag := nextTag
		nextTag++
		var buf [2]byte
		buf[0], buf[1] = byte(tag>>8), byte(tag)
		sent[tag] = c.Clock.Now()
		if _, err := pub.Publish(buf[:]); err != nil {
			fatal(err)
		}
	}
	fastLedger := &topicSub{sub: fast}
	drainOne := func(s *topicSub) bool {
		payload, _, ok := s.sub.Receive()
		if !ok {
			return false
		}
		if len(payload) >= 2 {
			tag := int(payload[0])<<8 | int(payload[1])
			if t0, ok := sent[tag]; ok {
				s.lat = append(s.lat, c.Clock.Now()-t0)
			}
		}
		return true
	}
	poll := sim.Time(o.poll.Nanoseconds())
	c.Clock.NewTicker(poll, func() {
		for drainOne(fastLedger) {
		}
	})

	gap := sim.Time(o.gap.Nanoseconds())
	settle := 1000 * poll
	var phaseAPub uint64

	// Handshake before traffic: the hello must be consumed and answered
	// so the baseline phase runs fully credited.
	waitAdverts := func(n int) error {
		if !credit {
			return nil
		}
		deadline := c.Clock.Now() + 10000*poll
		for pub.CreditAdverts() < n {
			if c.Clock.Now() > deadline {
				return fmt.Errorf("credit handshake incomplete (%d/%d adverts)", pub.CreditAdverts(), n)
			}
			c.Clock.RunUntil(c.Clock.Now() + 100*poll)
		}
		return nil
	}
	if err := waitAdverts(1); err != nil {
		return leg, err
	}

	// Phase A: the fast subscriber alone — the no-slow-peer baseline.
	start := c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publish() })
	}
	deadline := start + sim.Time(o.msgs)*gap + settle
	c.Clock.RunUntil(deadline)
	for i := 0; i < 500 && fast.Received()+fast.Drops() < pub.Sent(); i++ {
		deadline += settle
		c.Clock.RunUntil(deadline)
	}
	phaseAPub = pub.Published()
	base, err := stats.Summarize(collectLatencies([]*topicSub{fastLedger}))
	if err != nil {
		return leg, fmt.Errorf("baseline phase: %w", err)
	}
	leg.baselineP99 = base.P99

	// The slow subscriber joins, draining one message per slowFactor
	// publish periods — a consumer an order of magnitude behind the
	// topic's offered rate.
	slow, err := newSub(2)
	if err != nil {
		return leg, err
	}
	slowLedger := &topicSub{sub: slow}
	c.Clock.NewTicker(sim.Time(o.slowFactor)*gap, func() { drainOne(slowLedger) })
	// Renewals on a coarse cadence drive the AIMD interval (and keep
	// the lease alive, as a deployment's housekeeping loop would).
	c.Clock.NewTicker(100*gap, func() {
		if err := fast.Renew(); err != nil {
			fatal(err)
		}
		if err := slow.Renew(); err != nil {
			fatal(err)
		}
	})
	if err := pub.Refresh(); err != nil {
		return leg, err
	}
	if err := waitAdverts(2); err != nil {
		return leg, err
	}

	// Phase B: same publish cadence beside the slow peer.
	start = c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publish() })
	}
	deadline = start + sim.Time(o.msgs)*gap + settle
	c.Clock.RunUntil(deadline)
	balanced := func() bool {
		disposed := fast.Received() + fast.AppDrops() + slow.Received() + slow.AppDrops()
		return disposed >= pub.Sent()
	}
	for i := 0; i < 2000 && !balanced(); i++ {
		deadline += settle
		c.Clock.RunUntil(deadline)
	}

	// Conservation, with the new term: every fanout slot is delivered,
	// counted at a drop ledger, or deliberately throttled.
	slots := phaseAPub + 2*(pub.Published()-phaseAPub)
	// AppDrops: endpoint discards of control frames (hellos, credit)
	// are outside the publisher's ledgers and must not enter the law.
	got := fast.Received() + fast.AppDrops() + slow.Received() + slow.AppDrops() +
		pub.Dropped() + pub.Throttled()
	if got != slots {
		return leg, fmt.Errorf("conservation violated: %d accounted of %d fanout slots "+
			"(delivered f=%d s=%d, recv-dropped f=%d s=%d, pub-dropped %d, throttled %d)",
			got, slots, fast.Received(), slow.Received(), fast.AppDrops(), slow.AppDrops(),
			pub.Dropped(), pub.Throttled())
	}

	cont, err := stats.Summarize(collectLatencies([]*topicSub{fastLedger}))
	if err != nil {
		return leg, fmt.Errorf("contended phase: %w", err)
	}
	leg.contendP99 = cont.P99
	leg.slowDrops = slow.Drops()
	leg.slowRecv = slow.Received()
	leg.throttled = pub.Throttled()
	return leg, nil
}
