package main

import (
	"fmt"
	"os"
	"time"

	"flipc/internal/nameservice"
	"flipc/internal/registrystore"
	"flipc/internal/sim"
	"flipc/internal/simcluster"
	"flipc/internal/stats"
	"flipc/internal/topic"
)

// failoverOpts parameterizes the -failover scenario.
type failoverOpts struct {
	nodes   int
	msgSize int
	msgs    int           // control publishes per phase
	gap     time.Duration // publish period (virtual)
	poll    time.Duration
	window  int
}

// runFailover kills the registry mid-traffic and measures the takeover.
//
// Node 0 hosts the primary registry (durable store + replication feed),
// node 1 the standby (store + stream apply), node 2 a control-class
// publisher, and every remaining node one subscriber — all resolving
// through a FailoverDirectory pointed at the primary. Phase one runs
// traffic against the primary while the standby follows the mutation
// stream. Then the primary is killed cold (observer detached, feed
// stopped, never notified), the standby promotes, and the workload is
// retargeted. The scenario enforces the failover contract:
//
//   - the standby's generation is strictly above anything the primary
//     served, and every topic generation moved (cached plans go stale);
//   - zero subscriptions are lost across the takeover — the standby's
//     membership is a superset of the primary's last served state, and
//     subscribers re-validate their leases against the new registry;
//   - no publisher ever blocks: every publish completes and is
//     accounted (delivered or counted drop) by the conservation law;
//   - post-failover control p99 stays within 2x the pre-failover
//     baseline.
func runFailover(o failoverOpts) error {
	if o.nodes < 4 {
		return fmt.Errorf("-failover needs at least 4 nodes (2 registries, 1 publisher, 1+ subscribers)")
	}
	scfg := simcluster.Config{
		Nodes:        o.nodes,
		MessageSize:  o.msgSize,
		NumBuffers:   4 * o.window,
		PollInterval: sim.Time(o.poll.Nanoseconds()),
	}
	c, err := simcluster.New(scfg)
	if err != nil {
		return err
	}
	defer c.Close()

	walA, err := os.MkdirTemp("", "flipcsim-rega-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walA)
	walB, err := os.MkdirTemp("", "flipcsim-regb-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walB)

	// Primary registry on node 0: durable store, replication feed on the
	// reserved control-priority topic, fenced at promotion.
	regA := nameservice.NewTopicRegistry()
	stA, err := registrystore.Open(walA, regA, registrystore.Options{NoSync: true})
	if err != nil {
		return err
	}
	mgrA := registrystore.NewManager(regA, stA)
	dirA := topic.LocalDirectory{R: regA}
	repPub, err := topic.NewPublisher(c.Domains[0], dirA, topic.PublisherConfig{
		Topic: registrystore.ReplicationTopic, Class: registrystore.ReplicationClass,
		Window: o.window, RefreshEvery: 1,
	})
	if err != nil {
		return err
	}
	feed := registrystore.NewFeed(repPub, c.Domains[0].MaxPayload())
	mgrA.AttachFeed(feed)
	genA := mgrA.Promote()

	// Standby on node 1: subscribes to the replication stream through
	// the primary, applies records into its own registry and store.
	regB := nameservice.NewTopicRegistry()
	stB, err := registrystore.Open(walB, regB, registrystore.Options{NoSync: true})
	if err != nil {
		return err
	}
	mgrB := registrystore.NewManager(regB, stB)
	repSub, err := topic.NewSubscriber(c.Domains[1], dirA,
		registrystore.ReplicationTopic, registrystore.ReplicationClass, o.window, o.window)
	if err != nil {
		return err
	}
	apply := registrystore.NewApply(repSub, regB, stB)

	// Workload: subscribers on nodes 3..n-1 and a publisher on node 2,
	// all resolving through a failover directory so a takeover is one
	// retarget away. Subscriptions land after the standby attached, so
	// they flow down the stream.
	fdir := topic.NewFailoverDirectory(dirA)
	nsubs := o.nodes - 3
	var subs []*topicSub
	for n := 3; n < o.nodes; n++ {
		s, err := topic.NewSubscriber(c.Domains[n], fdir, "ctl", topic.Control, o.window, o.window)
		if err != nil {
			return err
		}
		subs = append(subs, &topicSub{sub: s})
	}
	pub, err := topic.NewPublisher(c.Domains[2], fdir, topic.PublisherConfig{
		Topic: "ctl", Class: topic.Control, Window: o.window, RefreshEvery: 8,
	})
	if err != nil {
		return err
	}

	// Bootstrap the standby with a full-state resync (the takeover
	// records enqueued before it subscribed never reached it): sequence
	// captured before export, so the stream overlap double-applies
	// idempotently instead of gapping.
	seqBefore := stA.Seq()
	if err := apply.Resync(regA.ExportState(), seqBefore); err != nil {
		return err
	}

	// Replication pump: the primary's feed and the standby's drain run
	// on the virtual clock until the kill. Subscribers renew leases on
	// the same cadence; the active registry sweeps epochs slowly enough
	// that a renewing subscriber can never expire.
	poll := sim.Time(o.poll.Nanoseconds())
	primaryAlive := true
	c.Clock.NewTicker(50*poll, func() {
		if !primaryAlive {
			return
		}
		mgrA.Heartbeat()
		if _, err := feed.Pump(); err != nil {
			fatal(err)
		}
		apply.Drain()
		if apply.NeedResync() {
			fatal(fmt.Errorf("standby gapped during steady state"))
		}
	})
	c.Clock.NewTicker(200*poll, func() {
		for _, s := range subs {
			if err := s.sub.Renew(); err != nil {
				fatal(err)
			}
		}
		if primaryAlive {
			if err := apply.Renew(); err != nil {
				fatal(err)
			}
		}
	})
	c.Clock.NewTicker(1000*poll, func() {
		if primaryAlive {
			regA.Advance()
		} else {
			regB.Advance()
		}
	})

	// Latency bookkeeping as in -topics: tags resolve drain times back
	// to the virtual publish instant.
	sent := map[int]sim.Time{}
	nextTag := 0
	publish := func() {
		tag := nextTag
		nextTag++
		var buf [2]byte
		buf[0], buf[1] = byte(tag>>8), byte(tag)
		sent[tag] = c.Clock.Now()
		if _, err := pub.Publish(buf[:]); err != nil {
			fatal(err)
		}
	}
	drain := func(s *topicSub) {
		for {
			payload, _, ok := s.sub.Receive()
			if !ok {
				return
			}
			if len(payload) < 2 {
				continue
			}
			tag := int(payload[0])<<8 | int(payload[1])
			if t0, ok := sent[tag]; ok {
				s.lat = append(s.lat, c.Clock.Now()-t0)
			}
		}
	}
	for _, s := range subs {
		s := s
		c.Clock.NewTicker(poll, func() { drain(s) })
	}

	gap := sim.Time(o.gap.Nanoseconds())
	settle := 1000 * poll
	balanced := func() bool {
		var got uint64
		for _, s := range subs {
			got += s.sub.Received() + s.sub.Drops()
		}
		return got+pub.Dropped() == pub.Published()*uint64(nsubs)
	}
	settleUntil := func(deadline sim.Time) {
		c.Clock.RunUntil(deadline)
		for i := 0; i < 500 && !balanced(); i++ {
			deadline += settle
			c.Clock.RunUntil(deadline)
		}
	}

	// Phase one: traffic against the primary.
	start := c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publish() })
	}
	settleUntil(start + sim.Time(o.msgs)*gap + settle)
	before := collectLatencies(subs)

	// Let the stream fully catch up, then kill the primary cold: the
	// observer detaches, the feed stops pumping, nobody says goodbye.
	// The catch-up target is captured once — renewals keep appending to
	// the log while the clock runs, and chasing a moving head would
	// never terminate.
	target := stA.Seq()
	for i := 0; i < 500 && apply.LastSeq() < target; i++ {
		c.Clock.RunUntil(c.Clock.Now() + settle)
	}
	if apply.LastSeq() < target {
		return fmt.Errorf("standby never caught up: stream at %d, primary at %d", apply.LastSeq(), target)
	}
	served := regA.ExportState()
	regA.Observe(nil)
	primaryAlive = false

	// Takeover: fence strictly above the dead primary, then retarget the
	// workload at the new registry.
	mgrB.ObservePeer(apply.PrimaryGen())
	genB := mgrB.Promote()
	if genB <= genA {
		return fmt.Errorf("standby generation %d not above dead primary's %d", genB, genA)
	}
	fdir.Retarget(topic.LocalDirectory{R: regB})

	// Subscription conservation: everything the primary last served must
	// exist on the new primary, under a strictly larger topic generation.
	for _, ts := range served.Topics {
		snap, ok := regB.Snapshot(ts.Name)
		if !ok {
			return fmt.Errorf("topic %q lost in failover", ts.Name)
		}
		if snap.Gen <= ts.Gen {
			return fmt.Errorf("topic %q generation %d not above served %d — stale plans would survive",
				ts.Name, snap.Gen, ts.Gen)
		}
		have := map[uint32]bool{}
		for _, sub := range snap.Subs {
			have[uint32(sub.Addr)] = true
		}
		for _, sub := range ts.Subs {
			if !have[uint32(sub.Addr)] {
				return fmt.Errorf("topic %q lost subscriber %v in failover", ts.Name, sub.Addr)
			}
		}
	}
	// Lease re-validation: every subscriber renews against the new
	// registry through the retargeted directory.
	for _, s := range subs {
		if err := s.sub.Renew(); err != nil {
			return fmt.Errorf("post-failover renew: %w", err)
		}
	}
	pub.Refresh()

	// Phase two: same traffic against the new primary.
	start = c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publish() })
	}
	settleUntil(start + sim.Time(o.msgs)*gap + settle)
	after := collectLatencies(subs)

	// Conservation across both phases: every publish completed without
	// blocking and is accounted for at one end or the other.
	var delivered, recvDrops uint64
	for _, s := range subs {
		delivered += s.sub.Received()
		recvDrops += s.sub.Drops()
	}
	expect := pub.Published() * uint64(nsubs)
	got := delivered + recvDrops + pub.Dropped()
	fmt.Printf("flipcsim -failover: %d nodes, %d subscribers, poll %v, gap %v\n",
		o.nodes, nsubs, o.poll, o.gap)
	fmt.Printf("registry: primary gen %d killed after %d records; standby promoted at gen %d (epoch %d)\n",
		genA, stA.Seq(), genB, fdir.Epoch())
	fmt.Printf("ctl: published %d x %d subs = %d; delivered %d, recv-dropped %d, pub-dropped %d\n",
		pub.Published(), nsubs, expect, delivered, recvDrops, pub.Dropped())
	if pub.Published() != uint64(2*o.msgs) {
		return fmt.Errorf("publisher blocked: %d of %d publishes completed", pub.Published(), 2*o.msgs)
	}
	if got != expect {
		return fmt.Errorf("conservation violated across failover: %d of %d accounted", got, expect)
	}
	fmt.Println("conservation: ok (zero subscriptions lost, no publisher blocked)")

	beforeSum, err := stats.Summarize(before)
	if err != nil {
		return fmt.Errorf("pre-failover phase: %w", err)
	}
	afterSum, err := stats.Summarize(after)
	if err != nil {
		return fmt.Errorf("post-failover phase: %w", err)
	}
	fmt.Printf("ctl one-way latency µs, pre-failover:  %v\n", beforeSum)
	fmt.Printf("ctl one-way latency µs, post-failover: %v\n", afterSum)
	ratio := afterSum.P99 / beforeSum.P99
	fmt.Printf("ctl p99 after failover: %.2fx pre-failover baseline\n", ratio)
	if ratio > 2 {
		return fmt.Errorf("control p99 degraded %.2fx across failover (bound: 2x)", ratio)
	}
	return nil
}
