package main

import (
	"fmt"
	"os"
	"time"

	"flipc/internal/duralog"
	"flipc/internal/nameservice"
	"flipc/internal/registrystore"
	"flipc/internal/sim"
	"flipc/internal/simcluster"
	"flipc/internal/stats"
	"flipc/internal/topic"
)

// failoverOpts parameterizes the -failover scenario.
type failoverOpts struct {
	nodes   int
	msgSize int
	msgs    int           // control publishes per phase
	gap     time.Duration // publish period (virtual)
	poll    time.Duration
	window  int
}

// runFailover kills the registry mid-traffic and measures the takeover.
//
// Node 0 hosts the primary registry (durable store + replication feed),
// node 1 the standby (store + stream apply), node 2 a control-class
// publisher, and every remaining node one subscriber — all resolving
// through a FailoverDirectory pointed at the primary. Phase one runs
// traffic against the primary while the standby follows the mutation
// stream. Then the primary is killed cold (observer detached, feed
// stopped, never notified), the standby promotes, and the workload is
// retargeted. The scenario enforces the failover contract:
//
//   - the standby's generation is strictly above anything the primary
//     served, and every topic generation moved (cached plans go stale);
//   - zero subscriptions are lost across the takeover — the standby's
//     membership is a superset of the primary's last served state, and
//     subscribers re-validate their leases against the new registry;
//   - no publisher ever blocks: every publish completes and is
//     accounted (delivered or counted drop) by the conservation law;
//   - post-failover control p99 stays within 2x the pre-failover
//     baseline.
func runFailover(o failoverOpts) error {
	if o.nodes < 4 {
		return fmt.Errorf("-failover needs at least 4 nodes (2 registries, 1 publisher, 1+ subscribers)")
	}
	scfg := simcluster.Config{
		Nodes:        o.nodes,
		MessageSize:  o.msgSize,
		NumBuffers:   4 * o.window,
		PollInterval: sim.Time(o.poll.Nanoseconds()),
	}
	c, err := simcluster.New(scfg)
	if err != nil {
		return err
	}
	defer c.Close()

	walA, err := os.MkdirTemp("", "flipcsim-rega-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walA)
	walB, err := os.MkdirTemp("", "flipcsim-regb-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walB)

	// Primary registry on node 0: durable store, replication feed on the
	// reserved control-priority topic, fenced at promotion.
	regA := nameservice.NewTopicRegistry()
	stA, err := registrystore.Open(walA, regA, registrystore.Options{NoSync: true})
	if err != nil {
		return err
	}
	mgrA := registrystore.NewManager(regA, stA)
	dirA := topic.LocalDirectory{R: regA}
	repPub, err := topic.NewPublisher(c.Domains[0], dirA, topic.PublisherConfig{
		Topic: registrystore.ReplicationTopic, Class: registrystore.ReplicationClass,
		Window: o.window, RefreshEvery: 1,
	})
	if err != nil {
		return err
	}
	feed := registrystore.NewFeed(repPub, c.Domains[0].MaxPayload())
	mgrA.AttachFeed(feed)
	genA := mgrA.Promote()

	// Standby on node 1: subscribes to the replication stream through
	// the primary, applies records into its own registry and store.
	regB := nameservice.NewTopicRegistry()
	stB, err := registrystore.Open(walB, regB, registrystore.Options{NoSync: true})
	if err != nil {
		return err
	}
	mgrB := registrystore.NewManager(regB, stB)
	repSub, err := topic.NewSubscriber(c.Domains[1], dirA,
		registrystore.ReplicationTopic, registrystore.ReplicationClass, o.window, o.window)
	if err != nil {
		return err
	}
	apply := registrystore.NewApply(repSub, regB, stB)

	// Workload: subscribers on nodes 3..n-1 and a publisher on node 2,
	// all resolving through a failover directory so a takeover is one
	// retarget away. Subscriptions land after the standby attached, so
	// they flow down the stream.
	fdir := topic.NewFailoverDirectory(dirA)
	nsubs := o.nodes - 3
	var subs []*topicSub
	for n := 3; n < o.nodes; n++ {
		s, err := topic.NewSubscriber(c.Domains[n], fdir, "ctl", topic.Control, o.window, o.window)
		if err != nil {
			return err
		}
		subs = append(subs, &topicSub{sub: s})
	}
	pub, err := topic.NewPublisher(c.Domains[2], fdir, topic.PublisherConfig{
		Topic: "ctl", Class: topic.Control, Window: o.window, RefreshEvery: 8,
	})
	if err != nil {
		return err
	}

	// Durable data topic: the payload-loss ledger. A durable publisher
	// journals every publish; its single subscriber (stable cursor name)
	// dies with the primary registry, traffic continues into the log
	// during the blackout, and a replacement resuming under the same
	// name must recover every payload by replay — zero loss, exactly
	// once, with the cursor plane itself surviving the failover.
	durDir, err := os.MkdirTemp("", "flipcsim-duralog-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(durDir)
	dlog, err := duralog.Open(durDir, duralog.Options{NoSync: true})
	if err != nil {
		return err
	}
	defer dlog.Close()
	const durName = "sim/ledger"
	dsub, err := topic.NewSubscriberDurable(c.Domains[3], fdir, "data", topic.Normal, o.window, o.window, durName)
	if err != nil {
		return err
	}
	dpub, err := topic.NewPublisher(c.Domains[2], fdir, topic.PublisherConfig{
		Topic: "data", Class: topic.Normal, Window: o.window, RefreshEvery: 8,
		Log: dlog, CreditBuffers: 8,
	})
	if err != nil {
		return err
	}

	// Bootstrap the standby with a full-state resync (the takeover
	// records enqueued before it subscribed never reached it): sequence
	// captured before export, so the stream overlap double-applies
	// idempotently instead of gapping.
	seqBefore := stA.Seq()
	if err := apply.Resync(regA.ExportState(), seqBefore); err != nil {
		return err
	}

	// Replication pump: the primary's feed and the standby's drain run
	// on the virtual clock until the kill. Subscribers renew leases on
	// the same cadence; the active registry sweeps epochs slowly enough
	// that a renewing subscriber can never expire.
	poll := sim.Time(o.poll.Nanoseconds())
	primaryAlive := true
	durAlive := true
	durCur := dsub // current durable subscriber incarnation
	c.Clock.NewTicker(50*poll, func() {
		dpub.PumpReplay(0)
		if !primaryAlive {
			return
		}
		mgrA.Heartbeat()
		if _, err := feed.Pump(); err != nil {
			fatal(err)
		}
		apply.Drain()
		if apply.NeedResync() {
			fatal(fmt.Errorf("standby gapped during steady state"))
		}
	})
	c.Clock.NewTicker(200*poll, func() {
		for _, s := range subs {
			if err := s.sub.Renew(); err != nil {
				fatal(err)
			}
		}
		if durAlive {
			if err := durCur.Renew(); err != nil {
				fatal(err)
			}
		}
		if primaryAlive {
			if err := apply.Renew(); err != nil {
				fatal(err)
			}
		}
	})
	c.Clock.NewTicker(1000*poll, func() {
		if primaryAlive {
			regA.Advance()
		} else {
			regB.Advance()
		}
	})

	// Latency bookkeeping as in -topics: tags resolve drain times back
	// to the virtual publish instant.
	sent := map[int]sim.Time{}
	nextTag := 0
	publish := func() {
		tag := nextTag
		nextTag++
		var buf [2]byte
		buf[0], buf[1] = byte(tag>>8), byte(tag)
		sent[tag] = c.Clock.Now()
		if _, err := pub.Publish(buf[:]); err != nil {
			fatal(err)
		}
	}
	drain := func(s *topicSub) {
		for {
			payload, _, ok := s.sub.Receive()
			if !ok {
				return
			}
			if len(payload) < 2 {
				continue
			}
			tag := int(payload[0])<<8 | int(payload[1])
			if t0, ok := sent[tag]; ok {
				s.lat = append(s.lat, c.Clock.Now()-t0)
			}
		}
	}
	for _, s := range subs {
		s := s
		c.Clock.NewTicker(poll, func() { drain(s) })
	}

	// Durable data stream: tagged payloads, delivery counted per tag
	// across both subscriber incarnations (the loss ledger).
	durSeen := map[int]int{}
	durPublished := 0
	publishData := func() {
		tag := durPublished
		durPublished++
		var buf [2]byte
		buf[0], buf[1] = byte(tag>>8), byte(tag)
		if _, err := dpub.Publish(buf[:]); err != nil {
			fatal(err)
		}
	}
	c.Clock.NewTicker(poll, func() {
		if !durAlive {
			return
		}
		for {
			payload, _, ok := durCur.Receive()
			if !ok {
				return
			}
			if len(payload) >= 2 {
				durSeen[int(payload[0])<<8|int(payload[1])]++
			}
		}
	})

	gap := sim.Time(o.gap.Nanoseconds())
	settle := 1000 * poll
	balanced := func() bool {
		var got uint64
		for _, s := range subs {
			got += s.sub.Received() + s.sub.Drops()
		}
		return got+pub.Dropped() == pub.Published()*uint64(nsubs)
	}
	settleUntil := func(deadline sim.Time) {
		c.Clock.RunUntil(deadline)
		for i := 0; i < 500 && !balanced(); i++ {
			deadline += settle
			c.Clock.RunUntil(deadline)
		}
	}

	// Phase one: traffic against the primary, ctl and durable data on
	// the same cadence.
	start := c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publish(); publishData() })
	}
	settleUntil(start + sim.Time(o.msgs)*gap + settle)
	before := collectLatencies(subs)

	// The durable stream must be fully delivered and fully acked —
	// cursor at head in the log and registered with the primary — before
	// the kill, so the replacement's resume point is exact and the
	// cursor record is in the replication stream the standby applies.
	durSettled := func() bool {
		if len(durSeen) != durPublished {
			return false
		}
		cur, ok := dlog.Cursor(durName)
		if !ok || cur != dlog.Head() {
			return false
		}
		rc, rok := regA.CursorOf("data", durName)
		return rok && rc == cur
	}
	for i := 0; i < 500 && !durSettled(); i++ {
		c.Clock.RunUntil(c.Clock.Now() + settle)
	}
	if !durSettled() {
		return fmt.Errorf("durable stream never settled before the kill: %d/%d delivered", len(durSeen), durPublished)
	}

	// Let the stream fully catch up, then kill the primary cold: the
	// observer detaches, the feed stops pumping, nobody says goodbye.
	// The catch-up target is captured once — renewals keep appending to
	// the log while the clock runs, and chasing a moving head would
	// never terminate.
	target := stA.Seq()
	for i := 0; i < 500 && apply.LastSeq() < target; i++ {
		c.Clock.RunUntil(c.Clock.Now() + settle)
	}
	if apply.LastSeq() < target {
		return fmt.Errorf("standby never caught up: stream at %d, primary at %d", apply.LastSeq(), target)
	}
	served := regA.ExportState()
	regA.Observe(nil)
	primaryAlive = false
	// The durable subscriber dies with the primary — a compound failure:
	// no unsubscribe, no farewell ack, the cursor's last registered
	// position is all that survives.
	durAlive = false
	deadDurAddr := durCur.Addr()

	// Takeover: fence strictly above the dead primary, then retarget the
	// workload at the new registry.
	mgrB.ObservePeer(apply.PrimaryGen())
	genB := mgrB.Promote()
	if genB <= genA {
		return fmt.Errorf("standby generation %d not above dead primary's %d", genB, genA)
	}
	fdir.Retarget(topic.LocalDirectory{R: regB})

	// Subscription conservation: everything the primary last served must
	// exist on the new primary, under a strictly larger topic generation.
	for _, ts := range served.Topics {
		snap, ok := regB.Snapshot(ts.Name)
		if !ok {
			return fmt.Errorf("topic %q lost in failover", ts.Name)
		}
		if snap.Gen <= ts.Gen {
			return fmt.Errorf("topic %q generation %d not above served %d — stale plans would survive",
				ts.Name, snap.Gen, ts.Gen)
		}
		have := map[uint32]bool{}
		for _, sub := range snap.Subs {
			have[uint32(sub.Addr)] = true
		}
		for _, sub := range ts.Subs {
			if !have[uint32(sub.Addr)] {
				return fmt.Errorf("topic %q lost subscriber %v in failover", ts.Name, sub.Addr)
			}
		}
	}
	// Lease re-validation: every subscriber renews against the new
	// registry through the retargeted directory.
	for _, s := range subs {
		if err := s.sub.Renew(); err != nil {
			return fmt.Errorf("post-failover renew: %w", err)
		}
	}
	pub.Refresh()

	// Blackout tranche: data keeps publishing with its only subscriber
	// dead — kill-mid-traffic. Every payload lands in the journal alone;
	// the replacement owes all of them to the replay. The dead lease is
	// reaped the way the sweep would, so plans stop carrying it.
	if err := fdir.Unsubscribe("data", deadDurAddr); err != nil {
		return fmt.Errorf("reap dead durable lease: %w", err)
	}
	dpub.Evict(deadDurAddr)
	start = c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publishData() })
	}
	c.Clock.RunUntil(start + sim.Time(o.msgs)*gap + settle)

	// The replacement resumes under the same cursor name at a fresh
	// address, from the stored cursor.
	dsub2, err := topic.NewSubscriberDurable(c.Domains[3], fdir, "data", topic.Normal, o.window, o.window, durName)
	if err != nil {
		return fmt.Errorf("durable replacement: %w", err)
	}
	durCur = dsub2
	durAlive = true
	if err := dpub.Refresh(); err != nil {
		return err
	}
	// Drain the blackout catch-up before the phase-two latency window:
	// the replay burst is deliberate Bulk-priority backlog, and letting
	// it overlap the measurement would charge the durable tranche to the
	// control-plane p99 bound.
	for i := 0; i < 500 && len(durSeen) != durPublished; i++ {
		c.Clock.RunUntil(c.Clock.Now() + settle)
	}
	if len(durSeen) != durPublished {
		return fmt.Errorf("blackout catch-up stalled: %d/%d delivered", len(durSeen), durPublished)
	}

	// Phase two: same traffic against the new primary, with the durable
	// stream back live.
	start = c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publish(); publishData() })
	}
	settleUntil(start + sim.Time(o.msgs)*gap + settle)
	after := collectLatencies(subs)

	// Durable quiesce: everything delivered across incarnations, cursor
	// back at head on the log and on the new primary.
	durDone := func() bool {
		if len(durSeen) != durPublished {
			return false
		}
		cur, ok := dlog.Cursor(durName)
		if !ok || cur != dlog.Head() {
			return false
		}
		rc, rok := regB.CursorOf("data", durName)
		return rok && rc == cur
	}
	for i := 0; i < 500 && !durDone(); i++ {
		c.Clock.RunUntil(c.Clock.Now() + settle)
	}

	// Conservation across both phases: every publish completed without
	// blocking and is accounted for at one end or the other.
	var delivered, recvDrops uint64
	for _, s := range subs {
		delivered += s.sub.Received()
		recvDrops += s.sub.Drops()
	}
	expect := pub.Published() * uint64(nsubs)
	got := delivered + recvDrops + pub.Dropped()
	fmt.Printf("flipcsim -failover: %d nodes, %d subscribers, poll %v, gap %v\n",
		o.nodes, nsubs, o.poll, o.gap)
	fmt.Printf("registry: primary gen %d killed after %d records; standby promoted at gen %d (epoch %d)\n",
		genA, stA.Seq(), genB, fdir.Epoch())
	fmt.Printf("ctl: published %d x %d subs = %d; delivered %d, recv-dropped %d, pub-dropped %d\n",
		pub.Published(), nsubs, expect, delivered, recvDrops, pub.Dropped())
	if pub.Published() != uint64(2*o.msgs) {
		return fmt.Errorf("publisher blocked: %d of %d publishes completed", pub.Published(), 2*o.msgs)
	}
	if got != expect {
		return fmt.Errorf("conservation violated across failover: %d of %d accounted", got, expect)
	}
	fmt.Println("conservation: ok (zero subscriptions lost, no publisher blocked)")

	// The durable data-loss ledger: every payload published across the
	// kill — including the blackout tranche nobody was alive to hear —
	// was delivered exactly once, and the only admissible loss class
	// (retention stranding) is empty.
	if durPublished != 3*o.msgs || dlog.Head() != uint64(durPublished) {
		return fmt.Errorf("durable journal short: %d published, head %d", durPublished, dlog.Head())
	}
	for tag := 0; tag < durPublished; tag++ {
		if n := durSeen[tag]; n != 1 {
			return fmt.Errorf("durable payload %d delivered %d times (zero-loss ledger violated)", tag, n)
		}
	}
	if dpub.ReplayStranded() != 0 {
		return fmt.Errorf("durable stranded %d frames on an unbreached log", dpub.ReplayStranded())
	}
	if dpub.Replayed() == 0 || dsub2.Replayed() == 0 {
		return fmt.Errorf("durable blackout never exercised replay (pub %d, sub %d)",
			dpub.Replayed(), dsub2.Replayed())
	}
	rc, _ := regB.CursorOf("data", durName)
	fmt.Printf("data (durable): published %d (1/3 with its subscriber dead); delivered %d distinct, %d by replay; deferred %d, stranded 0\n",
		durPublished, len(durSeen), dsub2.Replayed(), dpub.Deferred())
	fmt.Printf("durable ledger: ok (zero payload loss across the kill; cursor %d at head on the new primary)\n", rc)

	beforeSum, err := stats.Summarize(before)
	if err != nil {
		return fmt.Errorf("pre-failover phase: %w", err)
	}
	afterSum, err := stats.Summarize(after)
	if err != nil {
		return fmt.Errorf("post-failover phase: %w", err)
	}
	fmt.Printf("ctl one-way latency µs, pre-failover:  %v\n", beforeSum)
	fmt.Printf("ctl one-way latency µs, post-failover: %v\n", afterSum)
	ratio := afterSum.P99 / beforeSum.P99
	fmt.Printf("ctl p99 after failover: %.2fx pre-failover baseline\n", ratio)
	if ratio > 2 {
		return fmt.Errorf("control p99 degraded %.2fx across failover (bound: 2x)", ratio)
	}
	return nil
}
