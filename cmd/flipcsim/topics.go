package main

import (
	"fmt"
	"time"

	"flipc/internal/engine"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/sim"
	"flipc/internal/simcluster"
	"flipc/internal/stats"
	"flipc/internal/topic"
)

// topicsOpts parameterizes the -topics scenario.
type topicsOpts struct {
	nodes   int
	msgSize int
	msgs    int           // control-topic publishes per phase
	gap     time.Duration // control publish period (virtual)
	bulkGap time.Duration // bulk publish period during the contended phase
	poll    time.Duration
	window  int
	batch   int           // mesh pending-buffer batch (0 = frame-at-a-time)
	flushDl time.Duration // mesh flush deadline for corked runs (virtual)
}

// topicSub is one subscriber plus its positional latency ledger.
type topicSub struct {
	sub *topic.Subscriber
	lat []sim.Time
}

// runTopics runs the prioritized pub/sub scenario on the virtual-time
// cluster: subscribers on every node but 0 join a control topic and a
// bulk topic; node 0 publishes on both. Phase one measures the control
// topic solo; phase two saturates the bulk topic and measures the
// control topic again. The engine's priority policy plus a quantum
// reservation must keep the contended control p99 near the solo
// baseline, and the fanout ledgers must conserve every message.
func runTopics(o topicsOpts) error {
	if o.nodes < 2 {
		return fmt.Errorf("-topics needs at least 2 nodes")
	}
	mesh := interconnect.DefaultMeshConfig()
	if o.batch > 0 {
		// Pending-buffer aggregation on the simulated wire: bulk runs
		// cork and pay one route setup, control frames bypass, and the
		// deadline bounds how long a corked frame can age. The ctl-p99
		// assertion below must hold unchanged — that is the point.
		mesh.BatchFrames = o.batch
		mesh.FlushDeadline = sim.Time(o.flushDl.Nanoseconds())
	}
	scfg := simcluster.Config{
		Nodes:        o.nodes,
		Mesh:         mesh,
		MessageSize:  o.msgSize,
		NumBuffers:   4 * o.window,
		PollInterval: sim.Time(o.poll.Nanoseconds()),
		// A tight send quantum with a control-class reservation makes the
		// engine — not the wire — the choke point when bulk overloads:
		// bulk is capped below its offered rate, its backlog hits the
		// publisher window, and the excess becomes counted optimistic
		// drops while the reserved slots keep control latency flat.
		Engine: engine.Config{
			Policy:          engine.PolicyPriority,
			SendQuantum:     3,
			ReservedQuantum: 2,
			ReservePriority: 1,
		},
	}
	c, err := simcluster.New(scfg)
	if err != nil {
		return err
	}
	defer c.Close()

	dir := topic.LocalDirectory{R: nameservice.NewTopicRegistry()}
	nsubs := o.nodes - 1
	var ctlSubs, bulkSubs []*topicSub
	for n := 1; n < o.nodes; n++ {
		cs, err := topic.NewSubscriber(c.Domains[n], dir, "ctl", topic.Control, o.window, o.window)
		if err != nil {
			return err
		}
		bs, err := topic.NewSubscriber(c.Domains[n], dir, "bulk", topic.Bulk, o.window, o.window)
		if err != nil {
			return err
		}
		ctlSubs = append(ctlSubs, &topicSub{sub: cs})
		bulkSubs = append(bulkSubs, &topicSub{sub: bs})
	}
	ctlPub, err := topic.NewPublisher(c.Domains[0], dir, topic.PublisherConfig{
		Topic: "ctl", Class: topic.Control, Window: o.window})
	if err != nil {
		return err
	}
	bulkPub, err := topic.NewPublisher(c.Domains[0], dir, topic.PublisherConfig{
		Topic: "bulk", Class: topic.Bulk, Window: o.window})
	if err != nil {
		return err
	}

	// Positional latency: the publish event stamps a tag into the
	// payload and records its virtual send time; subscriber drain
	// tickers resolve tags back to one latency sample per delivery.
	sent := map[int]sim.Time{}
	nextTag := 0
	publish := func(p *topic.Publisher, track bool) {
		tag := nextTag
		nextTag++
		var buf [2]byte
		buf[0], buf[1] = byte(tag>>8), byte(tag)
		if track {
			sent[tag] = c.Clock.Now()
		}
		if _, err := p.Publish(buf[:]); err != nil {
			fatal(err)
		}
	}
	drain := func(s *topicSub, track bool) {
		for {
			payload, _, ok := s.sub.Receive()
			if !ok {
				return
			}
			if !track || len(payload) < 2 {
				continue
			}
			tag := int(payload[0])<<8 | int(payload[1])
			if t0, ok := sent[tag]; ok {
				s.lat = append(s.lat, c.Clock.Now()-t0)
			}
		}
	}
	poll := sim.Time(o.poll.Nanoseconds())
	for _, s := range ctlSubs {
		s := s
		c.Clock.NewTicker(poll, func() { drain(s, true) })
	}
	for _, s := range bulkSubs {
		s := s
		c.Clock.NewTicker(poll, func() { drain(s, false) })
	}

	gap := sim.Time(o.gap.Nanoseconds())
	bulkGap := sim.Time(o.bulkGap.Nanoseconds())
	settle := 1000 * poll

	// balanced reports whether every published message has reached a
	// ledger (delivered, or counted as a drop at one end).
	balanced := func(pub *topic.Publisher, subs []*topicSub) bool {
		var got uint64
		for _, s := range subs {
			got += s.sub.Received() + s.sub.AppDrops()
		}
		return got+pub.Dropped() == pub.Published()*uint64(nsubs)
	}
	// settleUntil keeps the clock running past deadline until both
	// topics' ledgers balance (in-flight backlogs drain at engine pace).
	settleUntil := func(deadline sim.Time) {
		c.Clock.RunUntil(deadline)
		for i := 0; i < 500 && !(balanced(ctlPub, ctlSubs) && balanced(bulkPub, bulkSubs)); i++ {
			deadline += settle
			c.Clock.RunUntil(deadline)
		}
	}

	// Phase one: control topic alone.
	start := c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publish(ctlPub, true) })
	}
	settleUntil(start + sim.Time(o.msgs)*gap + settle)
	solo := collectLatencies(ctlSubs)

	// Phase two: bulk saturation alongside the same control cadence.
	start = c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() { publish(ctlPub, true) })
	}
	bulkMsgs := int(sim.Time(o.msgs) * gap / bulkGap)
	for i := 0; i < bulkMsgs; i++ {
		t := start + sim.Time(i)*bulkGap
		c.Clock.At(t, func() { publish(bulkPub, false) })
	}
	settleUntil(start + sim.Time(o.msgs)*gap + settle)
	contended := collectLatencies(ctlSubs)

	// Conservation: each topic's ledgers must account for exactly
	// published × subscribers messages, with no silent loss.
	report := func(name string, pub *topic.Publisher, subs []*topicSub) (uint64, uint64, uint64, uint64) {
		var delivered, recvDrops uint64
		for _, s := range subs {
			delivered += s.sub.Received()
			recvDrops += s.sub.AppDrops()
		}
		expect := pub.Published() * uint64(nsubs)
		got := delivered + recvDrops + pub.Dropped()
		fmt.Printf("topic %-4s: published %d x %d subs = %d; delivered %d, recv-dropped %d, pub-dropped %d\n",
			name, pub.Published(), nsubs, expect, delivered, recvDrops, pub.Dropped())
		return expect, got, delivered, recvDrops
	}
	fmt.Printf("flipcsim -topics: %d nodes, %d subscribers/topic, poll %v, ctl gap %v, bulk gap %v\n",
		o.nodes, nsubs, o.poll, o.gap, o.bulkGap)
	ce, cg, _, _ := report("ctl", ctlPub, ctlSubs)
	be, bg, _, _ := report("bulk", bulkPub, bulkSubs)
	if ce != cg || be != bg {
		return fmt.Errorf("conservation violated: ctl %d/%d, bulk %d/%d accounted", cg, ce, bg, be)
	}
	fmt.Println("conservation: ok (delivered + counted drops == published x subscribers)")

	soloSum, err := stats.Summarize(solo)
	if err != nil {
		return fmt.Errorf("solo phase: %w", err)
	}
	contSum, err := stats.Summarize(contended)
	if err != nil {
		return fmt.Errorf("contended phase: %w", err)
	}
	fmt.Printf("ctl one-way latency µs, solo:      %v\n", soloSum)
	fmt.Printf("ctl one-way latency µs, contended: %v\n", contSum)
	ratio := contSum.P99 / soloSum.P99
	fmt.Printf("ctl p99 under bulk saturation: %.2fx solo baseline\n", ratio)
	if ratio > 2 {
		return fmt.Errorf("control p99 degraded %.2fx under bulk load (bound: 2x)", ratio)
	}
	return nil
}

// collectLatencies gathers and resets the subscribers' latency ledgers,
// in microseconds.
func collectLatencies(subs []*topicSub) []float64 {
	var out []float64
	for _, s := range subs {
		for _, l := range s.lat {
			out = append(out, l.Micros())
		}
		s.lat = nil
	}
	return out
}
