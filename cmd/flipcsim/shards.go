package main

import (
	"fmt"
	"os"
	"time"

	"flipc/internal/duralog"
	"flipc/internal/nameservice"
	"flipc/internal/registrystore"
	"flipc/internal/shardmap"
	"flipc/internal/sim"
	"flipc/internal/simcluster"
	"flipc/internal/stats"
	"flipc/internal/topic"
)

// shardsOpts parameterizes the -shards scenario.
type shardsOpts struct {
	nodes   int
	msgSize int
	msgs    int           // control publishes per phase, per shard
	gap     time.Duration // publish period (virtual)
	poll    time.Duration
	window  int
}

// nShards is the scenario's shard count: three independent failover
// domains, one of which is killed mid-traffic.
const nShards = 3

// runShards is the sharded-registry failure-domain scenario: three
// registry shards partition the topic namespace (consistent-hash
// shard map), each with its own durable store, replication stream
// ("!registry/<k>") and standby. One control topic per shard carries
// tagged traffic; a durable data topic rides on shard 0. Mid-way
// through phase two, shard 1's primary is killed cold and its standby
// promotes. The scenario enforces the independence contract:
//
//   - the surviving shards never notice: their ctl p99 stays within
//     1.2x their own pre-kill baseline and their FailoverDirectory
//     epochs never move;
//   - zero subscriptions are lost anywhere — the killed shard's
//     promoted standby serves a superset of the primary's last state
//     under a strictly higher generation, and the survivors' leases
//     are untouched;
//   - the durable cursor plane on a surviving shard is unperturbed:
//     every payload exactly once, cursor at head, nothing stranded;
//   - conservation is exact per shard: published x subscribers ==
//     delivered + receiver drops + publisher drops, with throttles
//     counted (zero on the uncredited control plane).
func runShards(o shardsOpts) error {
	if o.nodes < 10 {
		return fmt.Errorf("-shards needs at least 10 nodes (3 primaries, 3 standbys, 1 publisher, 3+ subscribers)")
	}
	scfg := simcluster.Config{
		Nodes:        o.nodes,
		MessageSize:  o.msgSize,
		NumBuffers:   16 * o.window,
		PollInterval: sim.Time(o.poll.Nanoseconds()),
	}
	c, err := simcluster.New(scfg)
	if err != nil {
		return err
	}
	defer c.Close()

	// The shard map: three equal shards. Topic ownership below is a
	// pure function of this map, exactly what servers and clients see.
	smap := shardmap.Restore(nShards, []shardmap.Entry{{ID: 0}, {ID: 1}, {ID: 2}})

	// Per-shard registry pairs: primary on node k, standby on node
	// 3+k, each with its own WAL and its own reserved stream.
	var (
		regP, regS [nShards]*nameservice.TopicRegistry
		stP, stS   [nShards]*registrystore.Store
		mgrP, mgrS [nShards]*registrystore.Manager
		feeds      [nShards]*registrystore.Feed
		applies    [nShards]*registrystore.Apply
		genP       [nShards]uint64
		alive      [nShards]bool
	)
	for k := 0; k < nShards; k++ {
		walP, err := os.MkdirTemp("", fmt.Sprintf("flipcsim-shard%d-p-", k))
		if err != nil {
			return err
		}
		defer os.RemoveAll(walP)
		walS, err := os.MkdirTemp("", fmt.Sprintf("flipcsim-shard%d-s-", k))
		if err != nil {
			return err
		}
		defer os.RemoveAll(walS)

		regP[k] = nameservice.NewTopicRegistry()
		stP[k], err = registrystore.Open(walP, regP[k], registrystore.Options{NoSync: true})
		if err != nil {
			return err
		}
		mgrP[k] = registrystore.NewManager(regP[k], stP[k])
		dirP := topic.LocalDirectory{R: regP[k]}
		stream := registrystore.ShardReplicationTopic(uint32(k))
		repPub, err := topic.NewPublisher(c.Domains[k], dirP, topic.PublisherConfig{
			Topic: stream, Class: registrystore.ReplicationClass,
			Window: o.window, RefreshEvery: 1,
		})
		if err != nil {
			return err
		}
		feeds[k] = registrystore.NewFeed(repPub, c.Domains[k].MaxPayload())
		mgrP[k].AttachFeed(feeds[k])
		genP[k] = mgrP[k].Promote()
		alive[k] = true

		regS[k] = nameservice.NewTopicRegistry()
		stS[k], err = registrystore.Open(walS, regS[k], registrystore.Options{NoSync: true})
		if err != nil {
			return err
		}
		mgrS[k] = registrystore.NewManager(regS[k], stS[k])
		repSub, err := topic.NewSubscriber(c.Domains[3+k], dirP, stream,
			registrystore.ReplicationClass, o.window, o.window)
		if err != nil {
			return err
		}
		applies[k] = registrystore.NewApply(repSub, regS[k], stS[k])
	}

	// The sharded directory every workload participant resolves
	// through: one FailoverDirectory per shard, so the kill retargets
	// exactly one of them.
	sdir := topic.NewShardedDirectory(smap)
	for k := 0; k < nShards; k++ {
		sdir.SetShard(uint32(k), topic.LocalDirectory{R: regP[k]})
	}

	// One control topic per shard, names found by searching the map
	// (routing is deterministic, so so are the names), plus a durable
	// data topic owned by shard 0 — a surviving shard, to prove the
	// cursor plane elsewhere never flinches.
	ctlTopic := map[uint32]string{}
	for i := 0; len(ctlTopic) < nShards; i++ {
		name := fmt.Sprintf("ctl-%d", i)
		id, ok := smap.ShardOf(name)
		if !ok {
			return fmt.Errorf("shard map refused to route")
		}
		if _, have := ctlTopic[id]; !have {
			ctlTopic[id] = name
		}
	}
	dataTopic := ""
	for i := 0; dataTopic == ""; i++ {
		name := fmt.Sprintf("data-%d", i)
		if id, _ := smap.ShardOf(name); id == 0 {
			dataTopic = name
		}
	}

	// Subscribers on nodes 7..n-1 join every shard's control topic;
	// the publisher node hosts one publisher per topic.
	nsubs := o.nodes - 7
	subsByShard := map[uint32][]*topicSub{}
	for k := uint32(0); k < nShards; k++ {
		for n := 7; n < o.nodes; n++ {
			s, err := topic.NewSubscriber(c.Domains[n], sdir, ctlTopic[k], topic.Control, o.window, o.window)
			if err != nil {
				return err
			}
			subsByShard[k] = append(subsByShard[k], &topicSub{sub: s})
		}
	}
	pubs := map[uint32]*topic.Publisher{}
	for k := uint32(0); k < nShards; k++ {
		p, err := topic.NewPublisher(c.Domains[6], sdir, topic.PublisherConfig{
			Topic: ctlTopic[k], Class: topic.Control, Window: o.window, RefreshEvery: 8,
		})
		if err != nil {
			return err
		}
		pubs[k] = p
	}

	durDir, err := os.MkdirTemp("", "flipcsim-shards-duralog-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(durDir)
	dlog, err := duralog.Open(durDir, duralog.Options{NoSync: true})
	if err != nil {
		return err
	}
	defer dlog.Close()
	const durName = "sim/shard-ledger"
	dsub, err := topic.NewSubscriberDurable(c.Domains[7], sdir, dataTopic, topic.Normal, o.window, o.window, durName)
	if err != nil {
		return err
	}
	dpub, err := topic.NewPublisher(c.Domains[6], sdir, topic.PublisherConfig{
		Topic: dataTopic, Class: topic.Normal, Window: o.window, RefreshEvery: 8,
		Log: dlog, CreditBuffers: 8,
	})
	if err != nil {
		return err
	}

	// Bootstrap every standby with a full-state resync: sequence
	// captured before export, so stream overlap double-applies
	// idempotently instead of gapping.
	for k := 0; k < nShards; k++ {
		if err := applies[k].Resync(regP[k].ExportState(), stP[k].Seq()); err != nil {
			return err
		}
	}

	// Housekeeping on the virtual clock, per shard: heartbeat, pump,
	// drain while the primary lives; renewals and sweeps throughout.
	poll := sim.Time(o.poll.Nanoseconds())
	c.Clock.NewTicker(50*poll, func() {
		dpub.PumpReplay(0)
		for k := 0; k < nShards; k++ {
			if !alive[k] {
				continue
			}
			mgrP[k].Heartbeat()
			if _, err := feeds[k].Pump(); err != nil {
				fatal(err)
			}
			applies[k].Drain()
			if applies[k].NeedResync() {
				fatal(fmt.Errorf("shard %d standby gapped during steady state", k))
			}
		}
	})
	c.Clock.NewTicker(200*poll, func() {
		for _, subs := range subsByShard {
			for _, s := range subs {
				if err := s.sub.Renew(); err != nil {
					fatal(err)
				}
			}
		}
		if err := dsub.Renew(); err != nil {
			fatal(err)
		}
		for k := 0; k < nShards; k++ {
			if alive[k] {
				if err := applies[k].Renew(); err != nil {
					fatal(err)
				}
			}
		}
	})
	c.Clock.NewTicker(1000*poll, func() {
		for k := 0; k < nShards; k++ {
			if alive[k] {
				regP[k].Advance()
			} else {
				regS[k].Advance()
			}
		}
	})

	// Tagged traffic per shard: tags resolve drain times back to the
	// virtual publish instant, one ledger per shard.
	sent := [nShards]map[int]sim.Time{}
	nextTag := [nShards]int{}
	for k := range sent {
		sent[k] = map[int]sim.Time{}
	}
	publish := func(k uint32) {
		tag := nextTag[k]
		nextTag[k]++
		var buf [2]byte
		buf[0], buf[1] = byte(tag>>8), byte(tag)
		sent[k][tag] = c.Clock.Now()
		if _, err := pubs[k].Publish(buf[:]); err != nil {
			fatal(err)
		}
	}
	for k := uint32(0); k < nShards; k++ {
		k := k
		for _, s := range subsByShard[k] {
			s := s
			c.Clock.NewTicker(poll, func() {
				for {
					payload, _, ok := s.sub.Receive()
					if !ok {
						return
					}
					if len(payload) < 2 {
						continue
					}
					tag := int(payload[0])<<8 | int(payload[1])
					if t0, ok := sent[k][tag]; ok {
						s.lat = append(s.lat, c.Clock.Now()-t0)
					}
				}
			})
		}
	}

	// Durable data stream: delivery counted per tag (the loss ledger).
	durSeen := map[int]int{}
	durPublished := 0
	publishData := func() {
		tag := durPublished
		durPublished++
		var buf [2]byte
		buf[0], buf[1] = byte(tag>>8), byte(tag)
		if _, err := dpub.Publish(buf[:]); err != nil {
			fatal(err)
		}
	}
	c.Clock.NewTicker(poll, func() {
		for {
			payload, _, ok := dsub.Receive()
			if !ok {
				return
			}
			if len(payload) >= 2 {
				durSeen[int(payload[0])<<8|int(payload[1])]++
			}
		}
	})

	gap := sim.Time(o.gap.Nanoseconds())
	settle := 1000 * poll
	balanced := func() bool {
		for k := uint32(0); k < nShards; k++ {
			var got uint64
			for _, s := range subsByShard[k] {
				got += s.sub.Received() + s.sub.Drops()
			}
			if got+pubs[k].Dropped() != pubs[k].Published()*uint64(nsubs) {
				return false
			}
		}
		return true
	}
	settleUntil := func(deadline sim.Time) {
		c.Clock.RunUntil(deadline)
		for i := 0; i < 500 && !balanced(); i++ {
			deadline += settle
			c.Clock.RunUntil(deadline)
		}
	}

	// Let the durable handshake land before traffic starts: history
	// published before the cursor is pinned is by design not replayed,
	// so the exactly-once ledger begins at a locked seam.
	for i := 0; i < 500 && !dsub.DurableLocked(); i++ {
		c.Clock.RunUntil(c.Clock.Now() + settle)
	}
	if !dsub.DurableLocked() {
		return fmt.Errorf("durable subscriber never locked its seam")
	}

	// Phase one: traffic on all shards, establishing each shard's own
	// latency baseline.
	start := c.Clock.Now() + gap
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() {
			for k := uint32(0); k < nShards; k++ {
				publish(k)
			}
			publishData()
		})
	}
	settleUntil(start + sim.Time(o.msgs)*gap + settle)
	before := map[uint32]stats.Summary{}
	for k := uint32(0); k < nShards; k++ {
		sum, err := stats.Summarize(collectLatencies(subsByShard[k]))
		if err != nil {
			return fmt.Errorf("shard %d baseline: %w", k, err)
		}
		before[k] = sum
	}
	epochBefore := [nShards]uint64{}
	for k := 0; k < nShards; k++ {
		epochBefore[k] = sdir.Shard(uint32(k)).Epoch()
	}

	// Phase two: same traffic, with shard 1's primary killed cold
	// mid-phase. The kill callback is the takeover: detach the
	// observer, stop the feed (the ticker sees alive=false), promote
	// the standby strictly above the dead primary, retarget exactly
	// shard 1's directory, and re-validate its leases — the other
	// shards are never touched.
	const victim = uint32(1)
	var served nameservice.RegistryState
	var genB uint64
	start = c.Clock.Now() + gap
	killAt := start + sim.Time(o.msgs/2)*gap + gap/2
	c.Clock.At(killAt, func() {
		// Best-effort final pump/drain — anything still in flight on
		// the mesh dies with the primary, which is the point.
		if _, err := feeds[victim].Pump(); err != nil {
			fatal(err)
		}
		applies[victim].Drain()
		served = regP[victim].ExportState()
		regP[victim].Observe(nil)
		alive[victim] = false
		mgrS[victim].ObservePeer(applies[victim].PrimaryGen())
		genB = mgrS[victim].Promote()
		sdir.SetShard(victim, topic.LocalDirectory{R: regS[victim]})
		for _, s := range subsByShard[victim] {
			if err := s.sub.Renew(); err != nil {
				fatal(err)
			}
		}
		if err := pubs[victim].Refresh(); err != nil {
			fatal(err)
		}
	})
	for i := 0; i < o.msgs; i++ {
		t := start + sim.Time(i)*gap
		c.Clock.At(t, func() {
			for k := uint32(0); k < nShards; k++ {
				publish(k)
			}
			publishData()
		})
	}
	settleUntil(start + sim.Time(o.msgs)*gap + settle)
	after := map[uint32]stats.Summary{}
	for k := uint32(0); k < nShards; k++ {
		sum, err := stats.Summarize(collectLatencies(subsByShard[k]))
		if err != nil {
			return fmt.Errorf("shard %d phase two: %w", k, err)
		}
		after[k] = sum
	}

	// Durable quiesce: every payload delivered, cursor at head on the
	// log and registered with shard 0's (never killed) registry.
	durDone := func() bool {
		if len(durSeen) != durPublished {
			return false
		}
		cur, ok := dlog.Cursor(durName)
		if !ok || cur != dlog.Head() {
			return false
		}
		rc, rok := regP[0].CursorOf(dataTopic, durName)
		return rok && rc == cur
	}
	for i := 0; i < 500 && !durDone(); i++ {
		c.Clock.RunUntil(c.Clock.Now() + settle)
	}

	fmt.Printf("flipcsim -shards: %d nodes, %d shards, %d subscribers/topic, poll %v, gap %v\n",
		o.nodes, nShards, nsubs, o.poll, o.gap)
	fmt.Printf("shard map: epoch %d, topics %v, durable %q on shard 0\n",
		smap.Epoch(), ctlTopic, dataTopic)

	// Generation fencing: the victim's standby promoted strictly above
	// the dead primary.
	if genB <= genP[victim] {
		return fmt.Errorf("shard %d standby generation %d not above dead primary's %d", victim, genB, genP[victim])
	}
	fmt.Printf("shard %d: primary gen %d killed at %d records; standby promoted at gen %d\n",
		victim, genP[victim], stP[victim].Seq(), genB)

	// Failure-domain isolation: only the victim's directory moved.
	for k := 0; k < nShards; k++ {
		got := sdir.Shard(uint32(k)).Epoch()
		want := epochBefore[k]
		if uint32(k) == victim {
			want++
		}
		if got != want {
			return fmt.Errorf("shard %d directory epoch %d after the kill, want %d — failover leaked across shards", k, got, want)
		}
	}

	// Subscription conservation on the killed shard: the promoted
	// standby serves a superset of the primary's last served client
	// state, every topic under a strictly larger generation. The dead
	// shard's own reserved replication stream is excluded — its only
	// subscriber was the standby that just promoted, and sweeping that
	// stale self-subscription is teardown, not loss.
	for _, ts := range served.Topics {
		if len(ts.Name) > 0 && ts.Name[0] == '!' {
			continue
		}
		snap, ok := regS[victim].Snapshot(ts.Name)
		if !ok {
			return fmt.Errorf("topic %q lost in shard-%d failover", ts.Name, victim)
		}
		if snap.Gen <= ts.Gen {
			return fmt.Errorf("topic %q generation %d not above served %d", ts.Name, snap.Gen, ts.Gen)
		}
		have := map[uint32]bool{}
		for _, sub := range snap.Subs {
			have[uint32(sub.Addr)] = true
		}
		for _, sub := range ts.Subs {
			if !have[uint32(sub.Addr)] {
				return fmt.Errorf("topic %q lost subscriber %v in shard-%d failover", ts.Name, sub.Addr, victim)
			}
		}
	}

	// Conservation, exact per shard: published x subscribers ==
	// delivered + receiver drops + publisher drops; throttles are a
	// separate (zero, uncredited) ledger printed for completeness.
	for k := uint32(0); k < nShards; k++ {
		var delivered, recvDrops uint64
		for _, s := range subsByShard[k] {
			delivered += s.sub.Received()
			recvDrops += s.sub.Drops()
		}
		p := pubs[k]
		expect := p.Published() * uint64(nsubs)
		got := delivered + recvDrops + p.Dropped()
		fmt.Printf("shard %d ctl %q: published %d x %d = %d; delivered %d, recv-dropped %d, pub-dropped %d, throttled %d\n",
			k, ctlTopic[k], p.Published(), nsubs, expect, delivered, recvDrops, p.Dropped(), p.Throttled())
		if p.Published() != uint64(2*o.msgs) {
			return fmt.Errorf("shard %d publisher blocked: %d of %d publishes completed", k, p.Published(), 2*o.msgs)
		}
		if got != expect {
			return fmt.Errorf("shard %d conservation violated: %d of %d accounted", k, got, expect)
		}
	}
	fmt.Println("conservation: ok on every shard (zero subscriptions lost, no publisher blocked)")

	// The durable ledger on surviving shard 0: exactly once, cursor at
	// head, nothing stranded — the kill next door never touched it.
	if !durDone() {
		cur, curok := dlog.Cursor(durName)
		rc, rok := regP[0].CursorOf(dataTopic, durName)
		return fmt.Errorf("durable stream never quiesced: %d/%d delivered; head %d, log cursor %d (%v), registry cursor %d (%v); sub next %d acked %d replayed %d gapDrops %d seamDrops %d dupDrops %d resumes %d; pub replayed %d deferred %d stranded %d published %d dropped %d",
			len(durSeen), durPublished, dlog.Head(), cur, curok, rc, rok,
			dsub.NextSeq(), dsub.AckedSeq(), dsub.Replayed(), dsub.GapDrops(), dsub.SeamDrops(), dsub.DupDrops(), dsub.ResumesSent(),
			dpub.Replayed(), dpub.Deferred(), dpub.ReplayStranded(), dpub.Published(), dpub.Dropped())
	}
	if durPublished != 2*o.msgs || dlog.Head() != uint64(durPublished) {
		return fmt.Errorf("durable journal short: %d published, head %d", durPublished, dlog.Head())
	}
	for tag := 0; tag < durPublished; tag++ {
		if n := durSeen[tag]; n != 1 {
			return fmt.Errorf("durable payload %d delivered %d times", tag, n)
		}
	}
	if dpub.ReplayStranded() != 0 {
		return fmt.Errorf("durable stranded %d frames on an unbreached log", dpub.ReplayStranded())
	}
	rc, _ := regP[0].CursorOf(dataTopic, durName)
	fmt.Printf("durable ledger on shard 0: ok (%d payloads exactly once, cursor %d at head, stranded 0)\n",
		durPublished, rc)

	// The independence bound: surviving shards' p99 within 1.2x their
	// own baseline. The victim is reported but unbounded — its
	// blackout window is the failover, not a regression.
	for k := uint32(0); k < nShards; k++ {
		ratio := after[k].P99 / before[k].P99
		verdict := ""
		if k == victim {
			verdict = " (killed mid-phase; unbounded)"
		}
		fmt.Printf("shard %d ctl p99: %.2fµs -> %.2fµs (%.2fx)%s\n",
			k, before[k].P99, after[k].P99, ratio, verdict)
		if k != victim && ratio > 1.2 {
			return fmt.Errorf("surviving shard %d p99 degraded %.2fx across a foreign failover (bound: 1.2x)", k, ratio)
		}
	}
	fmt.Println("isolation: ok (surviving shards unperturbed by the kill)")
	return nil
}
