// Command flipcsim runs ad-hoc FLIPC scenarios on the virtual-time
// cluster (internal/simcluster): the real library and engine on the
// simulated Paragon mesh, with engines driven by discrete-event
// tickers. Useful for exploring design points beyond the canned
// experiments — mesh size, engine cadence, send policy, traffic shape.
//
// Examples:
//
//	flipcsim                                  # default 2-node ping stream
//	flipcsim -nodes 16 -src 0 -dst 15         # across the 4x4 mesh
//	flipcsim -poll 4us -msgs 1000 -gap 5us    # slow engine, heavy load
//	flipcsim -policy priority -prio 7         # prioritized send endpoint
//	flipcsim -chaos 0.05 -checksum -msgs 2000 # 5% of every fault mode
//	flipcsim -chaos-drop 0.1 -chaos-seed 7    # drops only, reproducible
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flipc/internal/engine"
	"flipc/internal/faultinject"
	"flipc/internal/sim"
	"flipc/internal/simcluster"
	"flipc/internal/stats"
	"flipc/internal/wire"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 2, "cluster size (fits the 4x4 mesh by default)")
		src     = flag.Int("src", 0, "sending node")
		dst     = flag.Int("dst", 1, "receiving node")
		msgSize = flag.Int("msgsize", 128, "fixed message size")
		msgs    = flag.Int("msgs", 200, "messages to send")
		gap     = flag.Duration("gap", 10*time.Microsecond, "virtual time between sends")
		poll    = flag.Duration("poll", time.Microsecond, "engine event-loop period (virtual)")
		window  = flag.Int("window", 8, "posted receive buffers")
		policy  = flag.String("policy", "rr", "send policy: rr or priority")
		prio    = flag.Int("prio", 0, "send endpoint transport priority (0-255)")
		payload = flag.Int("payload", 32, "payload bytes per message")

		topics   = flag.Bool("topics", false, "run the prioritized pub/sub scenario instead of the ping stream")
		bulkGap  = flag.Duration("bulkgap", time.Microsecond, "bulk publish period during -topics saturation phase")
		batch    = flag.Int("batch", 0, "-topics: mesh pending-buffer batch frames (0 = frame-at-a-time)")
		flushDl  = flag.Duration("flushdl", 0, "-topics: mesh flush deadline for corked runs (virtual time)")
		failover = flag.Bool("failover", false, "run the registry kill/failover scenario instead of the ping stream")
		shards   = flag.Bool("shards", false, "run the sharded-registry failure-domain scenario instead of the ping stream")
		gwsim    = flag.Bool("gateway", false, "run the gateway-kill edge plane scenario instead of the ping stream")
		gwcli    = flag.Int("gwclients", 4, "-gateway: clients per gateway")
		slowsub  = flag.Bool("slowsub", false, "run the slow-subscriber credit scenario instead of the ping stream")
		slowBy   = flag.Int("slowby", 10, "-slowsub: slow subscriber drains one message per this many publish periods")

		chaos        = flag.Float64("chaos", 0, "enable every fault mode at this rate (0..1)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "fault injection seed (node n uses seed+n)")
		chaosDrop    = flag.Float64("chaos-drop", -1, "frame drop rate (overrides -chaos)")
		chaosDup     = flag.Float64("chaos-dup", -1, "frame duplication rate (overrides -chaos)")
		chaosCorrupt = flag.Float64("chaos-corrupt", -1, "frame bit-corruption rate (overrides -chaos)")
		chaosDelay   = flag.Float64("chaos-delay", -1, "frame delay rate (overrides -chaos)")
		chaosReorder = flag.Float64("chaos-reorder", -1, "frame reorder rate (overrides -chaos)")
		checksum     = flag.Bool("checksum", false, "CRC32C-checksum every frame (corruption becomes a counted drop)")
		checks       = flag.Bool("checks", false, "enable engine validity checks")
	)
	flag.Parse()

	if *shards {
		n := *nodes
		if n < 10 {
			n = 10 // 3 primaries + 3 standbys + publisher + 3 subscribers
		}
		if err := runShards(shardsOpts{
			nodes:   n,
			msgSize: *msgSize,
			msgs:    *msgs,
			gap:     *gap,
			poll:    *poll,
			window:  *window * 4,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *gwsim {
		n := *nodes
		if n < nGateways+1 {
			n = nGateways + 1 // 3 gateways + publisher
		}
		if err := runGateway(gatewayOpts{
			nodes:   n,
			msgSize: *msgSize,
			msgs:    *msgs,
			gap:     *gap,
			poll:    *poll,
			window:  *window * 4,
			clients: *gwcli,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *failover {
		n := *nodes
		if n < 6 {
			n = 6 // 2 registries + publisher + 3 subscribers
		}
		if err := runFailover(failoverOpts{
			nodes:   n,
			msgSize: *msgSize,
			msgs:    *msgs,
			gap:     *gap,
			poll:    *poll,
			window:  *window * 4,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *slowsub {
		if err := runSlowsub(slowsubOpts{
			msgSize:    *msgSize,
			msgs:       *msgs,
			gap:        *gap,
			poll:       *poll,
			window:     *window * 4,
			slowFactor: *slowBy,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *topics {
		n := *nodes
		if n == 2 {
			n = 3 // default ping pair is too small for a fanout demo
		}
		if err := runTopics(topicsOpts{
			nodes:   n,
			msgSize: *msgSize,
			msgs:    *msgs,
			gap:     *gap,
			bulkGap: *bulkGap,
			poll:    *poll,
			window:  *window * 4,
			batch:   *batch,
			flushDl: *flushDl,
		}); err != nil {
			fatal(err)
		}
		return
	}

	pick := func(override float64) float64 {
		if override >= 0 {
			return override
		}
		return *chaos
	}
	ccfg := faultinject.Config{
		Seed:        *chaosSeed,
		DropRate:    pick(*chaosDrop),
		DupRate:     pick(*chaosDup),
		CorruptRate: pick(*chaosCorrupt),
		DelayRate:   pick(*chaosDelay),
		ReorderRate: pick(*chaosReorder),
	}
	chaosOn := ccfg.DropRate+ccfg.DupRate+ccfg.CorruptRate+ccfg.DelayRate+ccfg.ReorderRate > 0

	ecfg := engine.Config{Checksum: *checksum, ValidityChecks: *checks}
	switch *policy {
	case "rr":
	case "priority":
		ecfg.Policy = engine.PolicyPriority
	default:
		fmt.Fprintf(os.Stderr, "flipcsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	scfg := simcluster.Config{
		Nodes:        *nodes,
		MessageSize:  *msgSize,
		NumBuffers:   *window + 32,
		PollInterval: sim.Time(poll.Nanoseconds()),
		Engine:       ecfg,
	}
	if chaosOn {
		scfg.Chaos = &ccfg
	}
	c, err := simcluster.New(scfg)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	p, err := c.NewProbePrio(*src, *dst, *window, uint8(*prio))
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *msgs; i++ {
		p.SendAt(sim.Time(i+1)*sim.Time(gap.Nanoseconds()), *payload)
	}
	deadline := sim.Time(*msgs+10) * sim.Time(gap.Nanoseconds()) * 4
	p.Run(deadline)

	fmt.Printf("flipcsim: %d nodes, %d->%d (%d mesh hops), message size %d, poll %v\n",
		*nodes, *src, *dst, c.Mesh.Hops(uint16ToNode(*src), uint16ToNode(*dst)), *msgSize, *poll)
	fmt.Printf("sent %d, delivered %d, dropped %d, pending %d\n",
		*msgs, len(p.Latencies), p.Endpoint().Drops(), p.Pending())
	if chaosOn {
		var inj faultinject.Stats
		for _, j := range c.Injectors {
			st := j.Stats()
			inj.Sent += st.Sent
			inj.Forwarded += st.Forwarded
			inj.Dropped += st.Dropped
			inj.Duplicated += st.Duplicated
			inj.Corrupted += st.Corrupted
			inj.Delayed += st.Delayed
			inj.Reordered += st.Reordered
		}
		var est engine.Stats
		quarantined := 0
		for _, d := range c.Domains {
			st := d.Engine().Stats()
			est.RecvDrops += st.RecvDrops
			est.AddrDrops += st.AddrDrops
			est.BadFrames += st.BadFrames
			est.ChecksumDrops += st.ChecksumDrops
			est.QuarantineDrops += st.QuarantineDrops
			quarantined += len(d.Engine().Quarantined())
		}
		fmt.Printf("chaos: injected drop=%d dup=%d corrupt=%d delay=%d reorder=%d (of %d frames)\n",
			inj.Dropped, inj.Duplicated, inj.Corrupted, inj.Delayed, inj.Reordered, inj.Sent)
		fmt.Printf("chaos: receiver loss recv=%d addr=%d bad=%d checksum=%d quarantine=%d; %d endpoints quarantined\n",
			est.RecvDrops, est.AddrDrops, est.BadFrames, est.ChecksumDrops, est.QuarantineDrops, quarantined)
	}
	if len(p.Latencies) == 0 {
		fatal(fmt.Errorf("nothing delivered"))
	}
	micros := make([]float64, len(p.Latencies))
	for i, l := range p.Latencies {
		micros[i] = l.Micros()
	}
	sum, err := stats.Summarize(micros)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("one-way latency µs: %v\n", sum)
	fmt.Printf("wire share: %.0f%% (wire %v of mean %.3fµs)\n",
		100*float64(c.Mesh.WireTime(uint16ToNode(*src), uint16ToNode(*dst), *msgSize))/(sum.Mean*1000),
		c.Mesh.WireTime(uint16ToNode(*src), uint16ToNode(*dst), *msgSize), sum.Mean)
}

func uint16ToNode(n int) wire.NodeID { return wire.NodeID(n) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flipcsim: %v\n", err)
	os.Exit(1)
}
