// Command flipcsim runs ad-hoc FLIPC scenarios on the virtual-time
// cluster (internal/simcluster): the real library and engine on the
// simulated Paragon mesh, with engines driven by discrete-event
// tickers. Useful for exploring design points beyond the canned
// experiments — mesh size, engine cadence, send policy, traffic shape.
//
// Examples:
//
//	flipcsim                                  # default 2-node ping stream
//	flipcsim -nodes 16 -src 0 -dst 15         # across the 4x4 mesh
//	flipcsim -poll 4us -msgs 1000 -gap 5us    # slow engine, heavy load
//	flipcsim -policy priority -prio 7         # prioritized send endpoint
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flipc/internal/engine"
	"flipc/internal/sim"
	"flipc/internal/simcluster"
	"flipc/internal/stats"
	"flipc/internal/wire"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 2, "cluster size (fits the 4x4 mesh by default)")
		src     = flag.Int("src", 0, "sending node")
		dst     = flag.Int("dst", 1, "receiving node")
		msgSize = flag.Int("msgsize", 128, "fixed message size")
		msgs    = flag.Int("msgs", 200, "messages to send")
		gap     = flag.Duration("gap", 10*time.Microsecond, "virtual time between sends")
		poll    = flag.Duration("poll", time.Microsecond, "engine event-loop period (virtual)")
		window  = flag.Int("window", 8, "posted receive buffers")
		policy  = flag.String("policy", "rr", "send policy: rr or priority")
		prio    = flag.Int("prio", 0, "send endpoint transport priority (0-255)")
		payload = flag.Int("payload", 32, "payload bytes per message")
	)
	flag.Parse()

	ecfg := engine.Config{}
	switch *policy {
	case "rr":
	case "priority":
		ecfg.Policy = engine.PolicyPriority
	default:
		fmt.Fprintf(os.Stderr, "flipcsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	c, err := simcluster.New(simcluster.Config{
		Nodes:        *nodes,
		MessageSize:  *msgSize,
		NumBuffers:   *window + 32,
		PollInterval: sim.Time(poll.Nanoseconds()),
		Engine:       ecfg,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	p, err := c.NewProbePrio(*src, *dst, *window, uint8(*prio))
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *msgs; i++ {
		p.SendAt(sim.Time(i+1)*sim.Time(gap.Nanoseconds()), *payload)
	}
	deadline := sim.Time(*msgs+10) * sim.Time(gap.Nanoseconds()) * 4
	p.Run(deadline)

	fmt.Printf("flipcsim: %d nodes, %d->%d (%d mesh hops), message size %d, poll %v\n",
		*nodes, *src, *dst, c.Mesh.Hops(uint16ToNode(*src), uint16ToNode(*dst)), *msgSize, *poll)
	fmt.Printf("sent %d, delivered %d, dropped %d, pending %d\n",
		*msgs, len(p.Latencies), p.Endpoint().Drops(), p.Pending())
	if len(p.Latencies) == 0 {
		fatal(fmt.Errorf("nothing delivered"))
	}
	micros := make([]float64, len(p.Latencies))
	for i, l := range p.Latencies {
		micros[i] = l.Micros()
	}
	sum, err := stats.Summarize(micros)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("one-way latency µs: %v\n", sum)
	fmt.Printf("wire share: %.0f%% (wire %v of mean %.3fµs)\n",
		100*float64(c.Mesh.WireTime(uint16ToNode(*src), uint16ToNode(*dst), *msgSize))/(sum.Mean*1000),
		c.Mesh.WireTime(uint16ToNode(*src), uint16ToNode(*dst), *msgSize), sum.Mean)
}

func uint16ToNode(n int) wire.NodeID { return wire.NodeID(n) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flipcsim: %v\n", err)
	os.Exit(1)
}
