// Command flipcping measures round-trip latency against a flipcd echo
// endpoint over TCP — the paper's two-way-exchange methodology on the
// ethernet development platform. Wall-clock numbers here characterize
// the Go/TCP substrate, not the Paragon (use flipcbench for the
// paper-model figures).
//
// Usage:
//
//	flipcping -node 2 -listen 127.0.0.1:0 \
//	          -peer 0=127.0.0.1:7000 -target 0x<echo addr> -count 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"flipc/internal/core"
	"flipc/internal/engine"
	"flipc/internal/metrics"
	"flipc/internal/nettrans"
	"flipc/internal/stats"
	"flipc/internal/wire"
)

func main() {
	var (
		node    = flag.Int("node", 2, "this node's ID")
		listen  = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		peers   = flag.String("peer", "", "comma-separated peer list: id=host:port,...")
		target  = flag.String("target", "", "echo endpoint address (hex, from flipcd)")
		count   = flag.Int("count", 100, "number of two-way exchanges")
		msgSize = flag.Int("msgsize", 128, "fixed message size (must match flipcd)")
	)
	flag.Parse()
	if *target == "" {
		fatal(fmt.Errorf("missing -target (the address flipcd printed)"))
	}
	addrVal, err := strconv.ParseUint(strings.TrimPrefix(*target, "0x"), 16, 32)
	if err != nil {
		fatal(fmt.Errorf("bad -target %q: %v", *target, err))
	}
	dst := wire.Addr(addrVal)
	if !dst.Valid() {
		fatal(fmt.Errorf("-target %v is not a valid endpoint address", dst))
	}

	tr, err := nettrans.Listen(wire.NodeID(*node), *listen, *msgSize)
	if err != nil {
		fatal(err)
	}
	defer tr.Close()
	for _, part := range strings.Split(*peers, ",") {
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			fatal(fmt.Errorf("bad -peer entry %q", part))
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			fatal(err)
		}
		if err := tr.Dial(wire.NodeID(id), kv[1]); err != nil {
			fatal(err)
		}
	}

	// A registry makes the engine stamp outgoing pings (flipcd records
	// true one-way delivery latency when run with -http) and record the
	// one-way latency of stamped replies here.
	reg := metrics.NewRegistry()
	d, err := core.NewDomain(core.Config{
		Node: wire.NodeID(*node), MessageSize: *msgSize, NumBuffers: 32,
		Engine: engine.Config{Metrics: reg},
	}, tr)
	if err != nil {
		fatal(err)
	}
	defer d.Close()
	d.Start()

	rep, err := d.NewRecvEndpoint(8)
	if err != nil {
		fatal(err)
	}
	sep, err := d.NewSendEndpoint(8)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < 4; i++ {
		m, err := d.AllocBuffer()
		if err != nil {
			fatal(err)
		}
		if err := rep.Post(m); err != nil {
			fatal(err)
		}
	}

	my := uint32(rep.Addr())
	var rtts []float64
	lost := 0
	for i := 0; i < *count; i++ {
		m, err := d.AllocBuffer()
		if err != nil {
			fatal(err)
		}
		p := m.Payload()
		p[0], p[1], p[2], p[3] = byte(my>>24), byte(my>>16), byte(my>>8), byte(my)
		n := 4 + copy(p[4:], fmt.Sprintf("ping %d", i))
		start := time.Now()
		if err := sep.Send(m, dst, n); err != nil {
			fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		gotReply := false
		for time.Now().Before(deadline) {
			if reply, ok := rep.Receive(); ok {
				rtts = append(rtts, float64(time.Since(start).Microseconds()))
				gotReply = true
				if rep.Post(reply) != nil {
					d.FreeBuffer(reply)
				}
				break
			}
			time.Sleep(20 * time.Microsecond)
		}
		if !gotReply {
			lost++
		}
		if done, ok := sep.Acquire(); ok {
			d.FreeBuffer(done)
		}
	}
	if len(rtts) == 0 {
		fatal(fmt.Errorf("no replies (%d lost)", lost))
	}
	sum, err := stats.Summarize(rtts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("flipcping: %d exchanges, %d lost\n", len(rtts), lost)
	fmt.Printf("rtt µs: %v\n", sum)
	fmt.Printf("one-way estimate: %.1f µs (rtt/2; TCP substrate, not Paragon)\n", sum.Mean/2)
	// If the echo daemon stamps its replies (flipcd -http), the engine
	// recorded their true one-way latency — report the measured figure
	// next to the rtt/2 estimate.
	if lat, ok := reg.Snapshot().Histograms["flipc_recv_latency_ns"]; ok && lat.Count > 0 {
		fmt.Printf("one-way measured: p50=%.1f µs p99=%.1f µs (%d stamped replies)\n",
			lat.Quantile(0.5)/1e3, lat.Quantile(0.99)/1e3, lat.Count)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flipcping: %v\n", err)
	os.Exit(1)
}
