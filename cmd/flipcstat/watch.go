package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"flipc/internal/obs"
)

// watchLoop polls a flipcd observability endpoint and renders a
// refreshing table: counter deltas per interval, latency histogram
// quantiles, and per-peer health. It is the live companion to the
// one-shot reports — point it at the -http address of any flipcd.
func watchLoop(url string, interval time.Duration, count int) {
	url = strings.TrimSuffix(url, "/")
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	client := &http.Client{Timeout: interval}
	var prev *obs.MetricsJSON
	prevAt := time.Now()
	for i := 0; count <= 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		doc, err := fetchMetrics(client, url+"/metrics?format=json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "flipcstat: %v\n", err)
			continue
		}
		now := time.Now()
		render(doc, prev, now.Sub(prevAt), url)
		prev, prevAt = doc, now
	}
}

func fetchMetrics(client *http.Client, url string) (*obs.MetricsJSON, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var doc obs.MetricsJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &doc, nil
}

// render clears the screen and prints one refresh of the live table.
func render(doc, prev *obs.MetricsJSON, dt time.Duration, url string) {
	fmt.Print("\033[H\033[2J") // home + clear
	fmt.Printf("flipcstat -watch %s  (%s)\n", url, time.Now().Format("15:04:05"))

	// Registry durability/failover line (registry nodes only): role and
	// generation move on failover; WAL lag is records since the last
	// compaction, snapshot lag the sequence distance the snapshot is
	// behind the log. A store error means mutations are no longer
	// durable — shout it.
	if r := doc.Registry; r != nil {
		fmt.Printf("registry: role=%s gen=%d seq=%d wal-lag=%d snap-lag=%d epoch=%d promotions=%d demotions=%d",
			r.Role, r.RegistryGen, r.Seq, r.WALRecords, r.Seq-r.SnapshotSeq, r.Epoch, r.Promotions, r.Demotions)
		if r.StoreErr != "" {
			fmt.Printf("  STORE ERROR: %s", r.StoreErr)
		}
		fmt.Println()
	}

	// Per-shard registry roll-up (sharded registry nodes only): one row
	// per shard in the map — role and generation as probed from the
	// shard's address hint, with unreachable or primary-less shards
	// shouted (those also flip /healthz to 503).
	if len(doc.Shards) > 0 {
		fmt.Printf("\n%-7s %-9s %12s %12s  %s\n",
			"shard", "role", "gen", "seq", "status")
		for _, sh := range doc.Shards {
			status := "ok"
			switch {
			case sh.Err != "":
				status = "PROBE FAILED: " + sh.Err
			case !sh.Probed:
				status = "unprobed (no addr hint)"
			case !sh.Primary:
				status = "NO LIVE PRIMARY"
			}
			fmt.Printf("%-7d %-9s %12d %12d  %s\n",
				sh.Shard, sh.Role, sh.Gen, sh.Seq, status)
		}
	}

	// Durable topic logs (nodes hosting them only): depth is retained
	// payload frames, max-lag the head distance of the slowest cursor —
	// the two numbers that say whether replay debt is accumulating. A
	// breach means retention already passed the slowest cursor: its
	// resume will start late with a counted gap.
	if len(doc.Durable) > 0 {
		fmt.Printf("\n%-24s %10s %10s %9s %10s  %s\n",
			"durable topic", "head", "depth", "segments", "max-lag", "slowest cursor")
		for _, t := range doc.Durable {
			fmt.Printf("%-24s %10d %10d %9d %10d  %s",
				t.Topic, t.Head, t.Depth, t.Segments, t.MaxLag, t.LaggingSub)
			if t.Breached {
				fmt.Print("  RETENTION BREACHED")
			}
			if t.Err != "" {
				fmt.Printf("  LOG ERROR: %s", t.Err)
			}
			fmt.Println()
		}
	}
	// Gateway edge plane (flipcgw only): the connection population and
	// its leases, then one row per priority class — summed client queue
	// depth, frames lost at the shared class inbox, and the saturation
	// flag (the same condition that degrades /healthz to 503).
	if g := doc.Gateway; g != nil {
		fmt.Printf("\ngateway %s: conns=%d presence-leases=%d patterns=%d throttled-clients=%d renew-errors=%d\n",
			g.Name, g.Conns, g.Presence, g.Patterns, g.Throttled, g.RenewErrs)
		fmt.Printf("%-10s %12s %12s  %s\n", "class", "queue-depth", "inbox-drops", "status")
		for _, pc := range g.PerClass {
			status := "ok"
			if pc.Saturated {
				status = "SATURATED (inbox dropping)"
			}
			fmt.Printf("%-10s %12d %12d  %s\n", pc.Class, pc.QueueDepth, pc.InboxDrops, status)
		}
	}
	fmt.Println()

	// Counters: absolute value plus delta rate since the last sample.
	// Transport counters are exposed as funcs (gauges); fold the
	// *_total gauges in with the true counters so deltas work for both.
	type row struct {
		name  string
		value float64
	}
	var rows []row
	for name, v := range doc.Counters {
		rows = append(rows, row{name, float64(v)})
	}
	for name, v := range doc.Gauges {
		if strings.Contains(baseOf(name), "_total") {
			rows = append(rows, row{name, v})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Printf("%-52s %14s %12s\n", "counter", "value", "per-sec")
	for _, r := range rows {
		rate := ""
		if prev != nil && dt > 0 {
			p, ok := prev.Counters[r.name]
			pv := float64(p)
			if !ok {
				pv, ok = prev.Gauges[r.name]
			}
			if ok {
				rate = fmt.Sprintf("%.1f", (r.value-pv)/dt.Seconds())
			}
		}
		fmt.Printf("%-52s %14.0f %12s\n", r.name, r.value, rate)
	}

	// Histograms: quantiles in microseconds for latency/duration
	// instruments (the registry records nanoseconds).
	var hnames []string
	for name := range doc.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	if len(hnames) > 0 {
		fmt.Printf("\n%-52s %10s %10s %10s %10s %10s\n",
			"histogram", "count", "p50", "p90", "p99", "max")
		for _, name := range hnames {
			h := doc.Histograms[name]
			if strings.HasSuffix(baseOf(name), "_ns") {
				fmt.Printf("%-52s %10d %9.1fµ %9.1fµ %9.1fµ %9.1fµ\n",
					name, h.Count, h.P50/1e3, h.P90/1e3, h.P99/1e3, float64(h.Max)/1e3)
			} else {
				fmt.Printf("%-52s %10d %10.1f %10.1f %10.1f %10d\n",
					name, h.Count, h.P50, h.P90, h.P99, h.Max)
			}
		}
	}

	if len(doc.Peers) > 0 {
		fmt.Printf("\n%-6s %-13s %10s %10s %10s %12s\n",
			"peer", "state", "sent", "refused", "reconnects", "meanOutage")
		for _, p := range doc.Peers {
			fmt.Printf("%-6d %-13s %10d %10d %10d %10.1fms\n",
				p.Node, p.State, p.Sent, p.SendFailures, p.Reconnects, p.MeanOutageMs)
		}
	}
}

// baseOf strips a label set from an instrument name.
func baseOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
