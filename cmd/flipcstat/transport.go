package main

// Transport resilience report: a local two-node TCP exchange that
// exercises the failure paths deliberately — a mid-stream connection
// kill (reconnect + refused-send accounting) and a receive-inbox
// overflow (rx-drop accounting) — then prints the transport counters
// and per-peer health, so the loss-accounting contract can be
// inspected without a cluster: every frame the transport could not
// carry shows up on a counter.

import (
	"fmt"
	"os"
	"time"

	"flipc/internal/nettrans"
)

func transportReport(frames int) {
	a, err := nettrans.ListenConfig(nettrans.Config{
		Node: 0, Addr: "127.0.0.1:0", MessageSize: 128,
		Reconnect: nettrans.ReconnectConfig{
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
		},
	})
	if err != nil {
		fatalf("flipcstat: %v", err)
	}
	defer a.Close()
	// Node b's inbox is deliberately tiny so the overflow phase can
	// demonstrate receive-side drop accounting.
	b, err := nettrans.ListenConfig(nettrans.Config{
		Node: 1, Addr: "127.0.0.1:0", MessageSize: 128, InboxDepth: 8,
	})
	if err != nil {
		fatalf("flipcstat: %v", err)
	}
	defer b.Close()
	if err := a.Dial(1, b.Addr()); err != nil {
		fatalf("flipcstat: %v", err)
	}

	frame := make([]byte, 128)
	sent, refused, received := 0, 0, 0
	deadline := time.Now().Add(5 * time.Second)
	for sent < frames {
		if sent == frames/2 && a.Stats().Reconnects == 0 {
			// Mid-stream fault injection: kill the live connection and
			// let the redial machinery bring it back.
			a.DropConn(1)
			for a.Stats().Reconnects == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
		prev := received
		if a.TrySend(1, frame) {
			sent++
		} else {
			refused++
			time.Sleep(time.Millisecond)
		}
		// Lock-step with delivery so the baseline phase is drop-free;
		// the burst below then isolates the overflow accounting. A
		// frame lost in the kill window just times this wait out.
		frameWait := time.Now().Add(10 * time.Millisecond)
		for received == prev && time.Now().Before(frameWait) {
			if _, ok := b.Poll(); ok {
				received++
			}
		}
		for { // TCP coalesces; drain any burst completely
			if _, ok := b.Poll(); !ok {
				break
			}
			received++
		}
		if time.Now().After(deadline) {
			break
		}
	}
	// Overflow phase: burst without draining b so its inbox fills.
	for i := 0; i < 64; i++ {
		if a.TrySend(1, frame) {
			sent++
		}
	}
	drainDeadline := time.Now().Add(time.Second)
	for b.Stats().Delivered+b.Stats().RxDrops < uint64(sent) && time.Now().Before(drainDeadline) {
		time.Sleep(time.Millisecond)
	}
	for {
		if _, ok := b.Poll(); !ok {
			break
		}
		received++
	}

	fmt.Printf("flipcstat: transport resilience (%d frames, one forced kill, one inbox burst)\n\n", sent)
	for _, n := range []struct {
		name string
		tr   *nettrans.Transport
	}{{"sender (node 0)", a}, {"receiver (node 1)", b}} {
		st := n.tr.Stats()
		fmt.Printf("  %-18s sent=%-5d delivered=%-5d peerDowns=%-3d rxDrops=%-3d reconnects=%d\n",
			n.name, st.Sent, st.Delivered, st.PeerDowns, st.RxDrops, st.Reconnects)
		for _, h := range n.tr.Health() {
			fmt.Printf("    peer %d %-12s sent=%-5d refused=%-3d reconnects=%d meanOutage=%.1fms\n",
				h.Node, h.State, h.Sent, h.SendFailures, h.Reconnects, h.MeanOutageMs)
		}
	}
	lost := sent - received
	fmt.Printf("\n  frames sent %d, received %d, lost %d; accounted for: %d rx-dropped (inbox full)\n",
		sent, received, lost, b.Stats().RxDrops)
	fmt.Printf("  refused before transmission (counted, never silently lost): %d\n", refused)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
