// Command flipcstat profiles the communication buffer's cache-coherency
// behaviour: it runs message exchanges through the real implementation
// with the two-cache model attached and reports the per-exchange
// coherency events for each interface/layout configuration — the data
// behind the paper's tuning story (§Implementation) in raw form.
//
// Usage:
//
//	flipcstat                  # all four configurations, 64-byte messages
//	flipcstat -msgsize 256 -exchanges 100
//	flipcstat -transport       # TCP transport resilience + loss accounting
//	flipcstat -watch host:port # live metrics from a flipcd -http endpoint
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flipc/internal/cachesim"
	"flipc/internal/experiments"
	"flipc/internal/stats"
)

func main() {
	var (
		msgSize   = flag.Int("msgsize", 64, "fixed message size")
		exchanges = flag.Int("exchanges", 50, "two-way exchanges per configuration")
		seed      = flag.Int64("seed", 1996, "jitter seed")
		lines     = flag.Int("lines", 0, "also print the N hottest cache lines per node")
		transport = flag.Bool("transport", false, "run the TCP transport resilience report instead")
		watch     = flag.String("watch", "", "poll a flipcd observability endpoint (host:port or URL) and render live metrics")
		interval  = flag.Duration("interval", time.Second, "poll interval for -watch")
		samples   = flag.Int("count", 0, "number of -watch refreshes (0 = until interrupted)")
	)
	flag.Parse()

	if *watch != "" {
		watchLoop(*watch, *interval, *samples)
		return
	}
	if *transport {
		transportReport(*exchanges * 4)
		return
	}

	fmt.Printf("flipcstat: %d exchanges, %d-byte messages (coherency events per two-way exchange)\n\n",
		*exchanges, *msgSize)
	fmt.Printf("%-34s %7s %7s %7s %7s %9s %11s\n",
		"configuration", "rmiss", "wmiss", "inval", "xfer", "buslock", "latency(µs)")
	for _, cfg := range []struct {
		name     string
		locked   bool
		unpadded bool
	}{
		{"tuned (lock-free, line-isolated)", false, false},
		{"test-and-set locks", true, false},
		{"false-sharing layout", false, true},
		{"untuned (locks + false sharing)", true, true},
	} {
		res, err := experiments.RunPingPong(experiments.PingPongConfig{
			MessageSize: *msgSize,
			Exchanges:   *exchanges,
			Locked:      cfg.locked,
			Unpadded:    cfg.unpadded,
			Seed:        *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "flipcstat: %s: %v\n", cfg.name, err)
			os.Exit(1)
		}
		// Steady-state exchange profile (skip the cache-cold first one).
		var sum cachesim.Counts
		n := 0
		for i, d := range res.Exchange {
			if i == 0 {
				continue
			}
			sum = addCounts(sum, d)
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Printf("%-34s %7.1f %7.1f %7.1f %7.1f %9.1f %11.2f\n",
			cfg.name,
			float64(sum.ReadMisses.Total())/float64(n),
			float64(sum.WriteMisses.Total())/float64(n),
			float64(sum.Invalidations.Total())/float64(n),
			float64(sum.Transfers.Total())/float64(n),
			float64(sum.BusLocks.Total())/float64(n),
			stats.Mean(res.Steady()))
	}
	fmt.Println("\ncold (first) exchange vs steady state, tuned configuration:")
	res, err := experiments.RunPingPong(experiments.PingPongConfig{
		MessageSize: *msgSize, Exchanges: *exchanges, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "flipcstat: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  cold:   %v\n", res.Exchange[0])
	fmt.Printf("  steady: %v\n", res.Exchange[len(res.Exchange)-1])

	if *lines > 0 {
		fmt.Printf("\nhottest cache lines (tuned configuration):\n")
		for name, model := range map[string]*cachesim.Model{"node 0": res.ModelA, "node 1": res.ModelB} {
			fmt.Printf("  %s:\n", name)
			for _, lr := range model.HottestLines(*lines) {
				fmt.Printf("    line %4d (words %d..%d): %5d invalidations, %5d transfers\n",
					lr.Line, lr.FirstWord, lr.FirstWord+3, lr.Invalidations, lr.Transfers)
			}
		}
	}
}

func addCounts(a, b cachesim.Counts) cachesim.Counts {
	add := func(x, y cachesim.PerProc) cachesim.PerProc {
		var r cachesim.PerProc
		for i := range x {
			r[i] = x[i] + y[i]
		}
		return r
	}
	return cachesim.Counts{
		Loads:         add(a.Loads, b.Loads),
		Stores:        add(a.Stores, b.Stores),
		ReadMisses:    add(a.ReadMisses, b.ReadMisses),
		WriteMisses:   add(a.WriteMisses, b.WriteMisses),
		Invalidations: add(a.Invalidations, b.Invalidations),
		Transfers:     add(a.Transfers, b.Transfers),
		BusLocks:      add(a.BusLocks, b.BusLocks),
	}
}
