package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"flipc/internal/core"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/stats"
	"flipc/internal/topic"
	"flipc/internal/wire"
)

// The pub/sub benchmark: wall-clock fanout throughput and one-way
// latency through internal/topic on the in-process Fabric, at fanout
// 1, 8, and 64. Each publish stamps its send time into the payload;
// every delivery yields one latency sample. Drops (publisher window or
// subscriber inbox) are counted, never silent, so the run also checks
// the fanout conservation law before reporting.

type pubsubResult struct {
	Subscribers   int     `json:"subscribers"`
	Publishes     uint64  `json:"publishes"`
	FanoutSent    uint64  `json:"fanout_sent"`
	FanoutDropped uint64  `json:"fanout_dropped"`
	Delivered     uint64  `json:"delivered"`
	RecvDropped   uint64  `json:"recv_dropped"`
	PublishPerSec float64 `json:"publish_per_sec"`
	FramesPerSec  float64 `json:"frames_per_sec"`
	LatencyP50Us  float64 `json:"latency_p50_us"`
	LatencyP99Us  float64 `json:"latency_p99_us"`
	Samples       int     `json:"latency_samples"`
}

type pubsubReport struct {
	Benchmark   string         `json:"benchmark"`
	MessageSize int            `json:"message_size"`
	Class       string         `json:"class"`
	Results     []pubsubResult `json:"results"`
}

// runPubsub benchmarks each fanout width and writes the JSON report to
// path ("-" or "" = stdout only; a file also gets a human summary on
// stdout).
func runPubsub(path string, publishes int) error {
	report := pubsubReport{Benchmark: "pubsub_fanout", MessageSize: 128, Class: topic.Normal.String()}
	for _, subs := range []int{1, 8, 64} {
		r, err := pubsubOne(subs, publishes)
		if err != nil {
			return fmt.Errorf("pubsub fanout %d: %w", subs, err)
		}
		report.Results = append(report.Results, r)
		fmt.Printf("pubsub %2d subs: %8.0f publish/s %10.0f frames/s  p50 %7.1fµs  p99 %7.1fµs  (delivered %d, dropped pub %d + recv %d)\n",
			r.Subscribers, r.PublishPerSec, r.FramesPerSec, r.LatencyP50Us, r.LatencyP99Us,
			r.Delivered, r.FanoutDropped, r.RecvDropped)
	}
	var out io.Writer = os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func pubsubOne(subs, publishes int) (pubsubResult, error) {
	const (
		msgSize  = 128
		subNodes = 4 // subscriber domains; fanout spreads round-robin
	)
	fabric := interconnect.NewFabric(4096)
	mkDomain := func(node wire.NodeID) (*core.Domain, error) {
		tr, err := fabric.Attach(node)
		if err != nil {
			return nil, err
		}
		d, err := core.NewDomain(core.Config{
			Node: node, MessageSize: msgSize,
			NumBuffers: 2048, MaxEndpoints: 64, DefaultQueueDepth: 64,
		}, tr)
		if err != nil {
			return nil, err
		}
		d.Start()
		return d, nil
	}
	pubD, err := mkDomain(0)
	if err != nil {
		return pubsubResult{}, err
	}
	defer pubD.Close()
	var subDs []*core.Domain
	for n := 1; n <= subNodes; n++ {
		d, err := mkDomain(wire.NodeID(n))
		if err != nil {
			return pubsubResult{}, err
		}
		defer d.Close()
		subDs = append(subDs, d)
	}

	dir := topic.LocalDirectory{R: nameservice.NewTopicRegistry()}
	type subRun struct {
		s   *topic.Subscriber
		lat []float64
	}
	runs := make([]*subRun, subs)
	for i := range runs {
		s, err := topic.NewSubscriber(subDs[i%subNodes], dir, "bench", topic.Normal, 64, 64)
		if err != nil {
			return pubsubResult{}, err
		}
		runs[i] = &subRun{s: s}
	}
	window := topic.PublisherWindow(subs, 4)
	if window < 64 {
		window = 64
	}
	pub, err := topic.NewPublisher(pubD, dir, topic.PublisherConfig{
		Topic: "bench", Class: topic.Normal, Depth: 64, Window: window})
	if err != nil {
		return pubsubResult{}, err
	}
	if pub.Subscribers() != subs {
		return pubsubResult{}, fmt.Errorf("plan has %d subscribers, want %d", pub.Subscribers(), subs)
	}

	// Drain goroutines: one per subscriber (each inbox is
	// single-threaded, each goroutine owns exactly one). They stop when
	// the publisher closes done and the inbox runs dry.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, r := range runs {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			idle := 0
			for {
				payload, _, ok := r.s.Receive()
				if !ok {
					select {
					case <-done:
						idle++
						if idle > 100 {
							return
						}
					default:
					}
					time.Sleep(50 * time.Microsecond)
					continue
				}
				idle = 0
				if len(payload) >= 8 {
					sent := int64(binary.BigEndian.Uint64(payload[:8]))
					r.lat = append(r.lat, float64(time.Now().UnixNano()-sent)/1e3)
				}
			}
		}()
	}

	// Paced publish loop: a gap proportional to fanout keeps the
	// offered load near the engine's sustainable rate so latency
	// measures the pipeline, not an unbounded backlog. The wait spins
	// on the clock (time.Sleep granularity is too coarse at these
	// gaps) but yields each turn so the engine goroutines make
	// progress on small core counts.
	gap := time.Duration(subs)*2*time.Microsecond + 10*time.Microsecond
	var payload [8]byte
	t0 := time.Now()
	next := t0
	for i := 0; i < publishes; i++ {
		for time.Now().Before(next) {
			runtime.Gosched()
		}
		next = next.Add(gap)
		binary.BigEndian.PutUint64(payload[:], uint64(time.Now().UnixNano()))
		if _, err := pub.Publish(payload[:]); err != nil {
			return pubsubResult{}, err
		}
	}
	elapsed := time.Since(t0)
	// Let in-flight frames land, then stop the drains.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var got uint64
		for _, r := range runs {
			got += r.s.Received() + r.s.Drops()
		}
		if got+pub.Dropped() == pub.Published()*uint64(subs) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()

	var delivered, recvDropped uint64
	var lat []float64
	for _, r := range runs {
		delivered += r.s.Received()
		recvDropped += r.s.Drops()
		lat = append(lat, r.lat...)
	}
	if delivered+recvDropped+pub.Dropped() != pub.Published()*uint64(subs) {
		return pubsubResult{}, fmt.Errorf("conservation violated: %d delivered + %d recv-dropped + %d pub-dropped != %d published x %d",
			delivered, recvDropped, pub.Dropped(), pub.Published(), subs)
	}
	res := pubsubResult{
		Subscribers:   subs,
		Publishes:     pub.Published(),
		FanoutSent:    pub.Sent(),
		FanoutDropped: pub.Dropped(),
		Delivered:     delivered,
		RecvDropped:   recvDropped,
		PublishPerSec: float64(pub.Published()) / elapsed.Seconds(),
		FramesPerSec:  float64(pub.Sent()) / elapsed.Seconds(),
		Samples:       len(lat),
	}
	if len(lat) > 0 {
		p50, err := stats.Percentile(lat, 50)
		if err != nil {
			return pubsubResult{}, err
		}
		p99, err := stats.Percentile(lat, 99)
		if err != nil {
			return pubsubResult{}, err
		}
		res.LatencyP50Us, res.LatencyP99Us = p50, p99
	}
	return res, nil
}
