package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"flipc/internal/core"
	"flipc/internal/duralog"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/stats"
	"flipc/internal/topic"
	"flipc/internal/wire"
)

// The pub/sub benchmark: wall-clock fanout throughput and one-way
// latency through internal/topic on the in-process Fabric, at fanout
// 1, 8, and 64. Each publish stamps its send time into the payload;
// every delivery yields one latency sample. Drops (publisher window or
// subscriber inbox) are counted, never silent, so the run also checks
// the fanout conservation law before reporting.
//
// Beyond the plain baseline widths, the matrix runs a slow-subscriber
// pair at fanout 8 — one subscriber draining far below the publish
// rate, with per-topic receive credit off and then on — recording the
// before/after of the credit loop: without credit the slow inbox
// overruns (recv_dropped), with credit the overrun converts into
// publisher throttles (throttled) and the drop ledger stays clean.

type pubsubResult struct {
	Scenario      string  `json:"scenario"`
	Credit        bool    `json:"credit"`
	Durable       bool    `json:"durable,omitempty"`
	PayloadBytes  int     `json:"payload_bytes"`
	Subscribers   int     `json:"subscribers"`
	Publishes     uint64  `json:"publishes"`
	FanoutSent    uint64  `json:"fanout_sent"`
	FanoutDropped uint64  `json:"fanout_dropped"`
	Throttled     uint64  `json:"throttled"`
	Deferred      uint64  `json:"deferred,omitempty"`
	Replayed      uint64  `json:"replayed,omitempty"`
	Delivered     uint64  `json:"delivered"`
	RecvDropped   uint64  `json:"recv_dropped"`
	PublishPerSec float64 `json:"publish_per_sec"`
	FramesPerSec  float64 `json:"frames_per_sec"`
	LatencyP50Us  float64 `json:"latency_p50_us"`
	LatencyP99Us  float64 `json:"latency_p99_us"`
	Samples       int     `json:"latency_samples"`
}

type pubsubReport struct {
	Benchmark   string         `json:"benchmark"`
	MessageSize int            `json:"message_size"`
	Class       string         `json:"class"`
	Results     []pubsubResult `json:"results"`
}

// runPubsub benchmarks the scenario matrix and writes the JSON report
// to path ("-" or "" = stdout only; a file also gets a human summary on
// stdout).
func runPubsub(path string, publishes int) error {
	report := pubsubReport{Benchmark: "pubsub_fanout", MessageSize: 128, Class: topic.Normal.String()}
	matrix := []struct {
		scenario string
		subs     int
		payload  int // publish payload bytes (0 = the 8-byte stamp alone)
		slow     bool
		credit   bool
		durable  bool
	}{
		{"baseline", 1, 0, false, false, false},
		{"baseline", 8, 0, false, false, false},
		{"baseline", 64, 0, false, false, false},
		// Copy ablation at the widest fanout: identical descriptor work
		// (64 sends, 64 inbox passes per publish) with the payload grown
		// from the bare 8-byte stamp to the full 120-byte MTU. The fanout
		// path stages the payload once and the engine copies per send, so
		// the delta against baseline-64 prices the per-byte copy cost in
		// isolation from the per-frame descriptor cost.
		{"fullpayload", 64, 120, false, false, false},
		{"slow_nocredit", 8, 0, true, false, false},
		{"slow_credit", 8, 0, true, true, false},
		// The durability tax: same width as the fanout-8 baseline, with
		// every publish journaled (sequence prefix + duralog append) and
		// the subscribers running the exactly-once replay seam. The
		// live-path p50/p99 delta against the baseline row is the cost
		// of the durable tap.
		{"durable", 8, 0, false, false, true},
	}
	for _, m := range matrix {
		r, err := pubsubOne(m.subs, publishes, m.payload, m.slow, m.credit, m.durable)
		if err != nil {
			return fmt.Errorf("pubsub %s fanout %d: %w", m.scenario, m.subs, err)
		}
		r.Scenario, r.Credit, r.Durable = m.scenario, m.credit, m.durable
		report.Results = append(report.Results, r)
		fmt.Printf("pubsub %-13s %2d subs: %8.0f publish/s %10.0f frames/s  p50 %7.1fµs  p99 %7.1fµs  (delivered %d, dropped pub %d + recv %d, throttled %d)\n",
			m.scenario, r.Subscribers, r.PublishPerSec, r.FramesPerSec, r.LatencyP50Us, r.LatencyP99Us,
			r.Delivered, r.FanoutDropped, r.RecvDropped, r.Throttled)
	}
	var out io.Writer = os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// pubsubOne runs one cell. payloadBytes pads every publish to that
// size (minimum and default the 8-byte latency stamp) — the copy
// ablation's lever. With slow set, subscriber 0 drains an order
// of magnitude below the publish rate (its latency samples are excluded
// — the fast subscribers' tail is what the scenario measures); with
// credit set, the topic runs the per-subscriber receive-credit loop;
// with durable set, every publish is journaled to a duralog and the
// subscribers run the replay seam (replayed deliveries are excluded
// from the latency sample — they measure recovery, not the pipeline).
func pubsubOne(subs, publishes, payloadBytes int, slow, credit, durable bool) (pubsubResult, error) {
	const (
		msgSize  = 128
		subNodes = 4 // subscriber domains; fanout spreads round-robin
		subBufs  = 64
	)
	fabric := interconnect.NewFabric(4096)
	mkDomain := func(node wire.NodeID) (*core.Domain, error) {
		tr, err := fabric.Attach(node)
		if err != nil {
			return nil, err
		}
		d, err := core.NewDomain(core.Config{
			Node: node, MessageSize: msgSize,
			NumBuffers: 2048, MaxEndpoints: 64, DefaultQueueDepth: 64,
		}, tr)
		if err != nil {
			return nil, err
		}
		d.Start()
		return d, nil
	}
	pubD, err := mkDomain(0)
	if err != nil {
		return pubsubResult{}, err
	}
	defer pubD.Close()
	var subDs []*core.Domain
	for n := 1; n <= subNodes; n++ {
		d, err := mkDomain(wire.NodeID(n))
		if err != nil {
			return pubsubResult{}, err
		}
		defer d.Close()
		subDs = append(subDs, d)
	}

	dir := topic.LocalDirectory{R: nameservice.NewTopicRegistry()}
	type subRun struct {
		s    *topic.Subscriber
		slow bool
		lat  []float64
	}
	runs := make([]*subRun, subs)
	for i := range runs {
		var s *topic.Subscriber
		var err error
		switch {
		case durable:
			s, err = topic.NewSubscriberDurable(subDs[i%subNodes], dir, "bench", topic.Normal,
				subBufs, subBufs, fmt.Sprintf("bench/sub-%02d", i))
		case credit:
			s, err = topic.NewSubscriberCredit(subDs[i%subNodes], dir, "bench", topic.Normal,
				subBufs, subBufs, topic.CreditConfig{})
		default:
			s, err = topic.NewSubscriber(subDs[i%subNodes], dir, "bench", topic.Normal, subBufs, subBufs)
		}
		if err != nil {
			return pubsubResult{}, err
		}
		runs[i] = &subRun{s: s, slow: slow && i == 0}
	}
	window := topic.PublisherWindow(subs, 4)
	if window < 64 {
		window = 64
	}
	if durable {
		// On a durable topic an outbox-backpressure drop is not a drop:
		// it re-enters the subscriber into catch-up, pulling the stream
		// through the journal until the seam re-locks. The baseline rows
		// tolerate a few percent of window drops as counted loss; here
		// the same shortfall would put most of the run on the replay
		// path and measure recovery instead of the tap. Size the window
		// to the offered burst so the measured phase stays live.
		window *= 4
	}
	var dlog *duralog.Log
	if durable {
		durDir, err := os.MkdirTemp("", "flipcbench-duralog-")
		if err != nil {
			return pubsubResult{}, err
		}
		defer os.RemoveAll(durDir)
		if dlog, err = duralog.Open(durDir, duralog.Options{NoSync: true}); err != nil {
			return pubsubResult{}, err
		}
		defer dlog.Close()
	}
	pub, err := topic.NewPublisher(pubD, dir, topic.PublisherConfig{
		Topic: "bench", Class: topic.Normal, Depth: 64, Window: window, Credit: credit, Log: dlog})
	if err != nil {
		return pubsubResult{}, err
	}
	if pub.Subscribers() != subs {
		return pubsubResult{}, fmt.Errorf("plan has %d subscribers, want %d", pub.Subscribers(), subs)
	}

	// Durable seam handshake before the drains start (and before the
	// clock): hello → resume → grant on every subscriber, driven from
	// this goroutine while it still owns the inboxes, so the measured
	// phase runs entirely on the live path.
	if durable {
		deadline := time.Now().Add(2 * time.Second)
		for {
			locked := true
			for _, r := range runs {
				for {
					if _, _, ok := r.s.Receive(); !ok {
						break
					}
				}
				if err := r.s.Renew(); err != nil {
					return pubsubResult{}, err
				}
				locked = locked && r.s.DurableLocked()
			}
			pub.PumpReplay(0)
			if locked {
				break
			}
			if time.Now().After(deadline) {
				return pubsubResult{}, fmt.Errorf("durable seam handshake incomplete")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The paced publish gap (below) sets the offered rate; the slow
	// subscriber consumes one message per slowdown gaps.
	gap := time.Duration(subs)*2*time.Microsecond + 10*time.Microsecond
	if durable {
		// The baseline pacing deliberately overdrives the engine a few
		// percent; those window drops are counted loss there. On a
		// durable topic the same backpressure instant re-enters the
		// subscriber into journal catch-up, and the replay pump riding
		// each publish keeps the congestion alive — the row would
		// measure a self-sustaining replay collapse, not the tap. Pace
		// at the durable pipeline's sustainable rate so the seam stays
		// live and p50/p99 price the journal append + seq prefix.
		gap *= 2
	}
	const slowdown = 20

	// Drain goroutines: one per subscriber (each inbox is
	// single-threaded, each goroutine owns exactly one). They stop when
	// the publisher closes done and the inbox runs dry.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, r := range runs {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			idle, spins := 0, 0
			for {
				payload, flags, ok := r.s.Receive()
				if !ok {
					select {
					case <-done:
						idle++
						if idle > 100 {
							return
						}
					default:
					}
					spins++
					if durable && spins%20 == 0 {
						// Ack/resume cadence: heals tail loss and moves
						// the cursor so the run can quiesce. The drain
						// goroutine owns the subscriber, so Renew is its
						// call to make.
						_ = r.s.Renew()
					}
					time.Sleep(50 * time.Microsecond)
					continue
				}
				idle = 0
				if len(payload) >= 8 && flags&topic.ReplayFlag == 0 {
					sent := int64(binary.BigEndian.Uint64(payload[:8]))
					r.lat = append(r.lat, float64(time.Now().UnixNano()-sent)/1e3)
				}
				if r.slow {
					time.Sleep(slowdown * gap)
				}
			}
		}()
	}

	// Credit handshake before the clock starts: hellos answered, every
	// account live, so the measured phase runs fully credited.
	if credit {
		deadline := time.Now().Add(2 * time.Second)
		for pub.CreditAdverts() < subs {
			if time.Now().After(deadline) {
				close(done)
				wg.Wait()
				return pubsubResult{}, fmt.Errorf("credit handshake incomplete: %d/%d adverts", pub.CreditAdverts(), subs)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Paced publish loop: a gap proportional to fanout keeps the
	// offered load near the engine's sustainable rate so latency
	// measures the pipeline, not an unbounded backlog. The wait spins
	// on the clock (time.Sleep granularity is too coarse at these
	// gaps) but yields each turn so the engine goroutines make
	// progress on small core counts.
	if payloadBytes < 8 {
		payloadBytes = 8
	}
	payload := make([]byte, payloadBytes)
	t0 := time.Now()
	next := t0
	for i := 0; i < publishes; i++ {
		for time.Now().Before(next) {
			if durable {
				// Housekeeping pump in the pacing gap: a heal round
				// opened by a backpressure deferral lands as soon as the
				// engine frees a slot, instead of waiting for the next
				// publish to drive it.
				pub.PumpReplay(0)
			}
			runtime.Gosched()
		}
		next = next.Add(gap)
		binary.BigEndian.PutUint64(payload[:8], uint64(time.Now().UnixNano()))
		if _, err := pub.Publish(payload); err != nil {
			return pubsubResult{}, err
		}
	}
	elapsed := time.Since(t0)
	// Let in-flight frames land, then stop the drains. The slow
	// subscriber needs real time: up to a full inbox at its sleep rate.
	settle := 2*time.Second + time.Duration(subBufs)*slowdown*gap
	deadline := time.Now().Add(settle)
	for time.Now().Before(deadline) {
		var got uint64
		for _, r := range runs {
			got += r.s.Received() + r.s.AppDrops()
		}
		if durable {
			// Durable conservation is stronger: every loss heals by
			// replay, so the run quiesces only when every subscriber has
			// every publish — exactly once, nothing outstanding.
			pub.PumpReplay(0)
			var dgot uint64
			for _, r := range runs {
				dgot += r.s.Received()
			}
			if dgot == pub.Published()*uint64(subs) {
				break
			}
		} else if got+pub.Dropped()+pub.Throttled() == pub.Published()*uint64(subs) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()

	var delivered, recvDropped uint64
	var lat []float64
	for _, r := range runs {
		delivered += r.s.Received()
		// AppDrops, not Drops: endpoint discards of publisher hello
		// frames are control-plane losses outside the pub ledgers, and
		// counting them here would break the equation below.
		recvDropped += r.s.AppDrops()
		if !r.slow {
			lat = append(lat, r.lat...)
		}
	}
	if durable {
		if delivered != pub.Published()*uint64(subs) {
			return pubsubResult{}, fmt.Errorf("durable conservation violated: %d delivered != %d published x %d (stranded %d)",
				delivered, pub.Published(), subs, pub.ReplayStranded())
		}
	} else if delivered+recvDropped+pub.Dropped()+pub.Throttled() != pub.Published()*uint64(subs) {
		return pubsubResult{}, fmt.Errorf("conservation violated: %d delivered + %d recv-dropped + %d pub-dropped + %d throttled != %d published x %d",
			delivered, recvDropped, pub.Dropped(), pub.Throttled(), pub.Published(), subs)
	}
	res := pubsubResult{
		PayloadBytes:  payloadBytes,
		Subscribers:   subs,
		Publishes:     pub.Published(),
		FanoutSent:    pub.Sent(),
		FanoutDropped: pub.Dropped(),
		Throttled:     pub.Throttled(),
		Deferred:      pub.Deferred(),
		Replayed:      pub.Replayed(),
		Delivered:     delivered,
		RecvDropped:   recvDropped,
		PublishPerSec: float64(pub.Published()) / elapsed.Seconds(),
		FramesPerSec:  float64(pub.Sent()) / elapsed.Seconds(),
		Samples:       len(lat),
	}
	if len(lat) > 0 {
		p50, err := stats.Percentile(lat, 50)
		if err != nil {
			return pubsubResult{}, err
		}
		p99, err := stats.Percentile(lat, 99)
		if err != nil {
			return pubsubResult{}, err
		}
		res.LatencyP50Us, res.LatencyP99Us = p50, p99
	}
	return res, nil
}
