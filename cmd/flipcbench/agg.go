package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"flipc/internal/core"
	"flipc/internal/engine"
	"flipc/internal/metrics"
	"flipc/internal/nameservice"
	"flipc/internal/nettrans"
	"flipc/internal/stats"
	"flipc/internal/topic"
)

// The A-series aggregation ablation: batch size x flush deadline over
// the real TCP transport, measured against the adaptive latency-budget
// policy. Each cell runs two topics across one loopback link — an
// unthrottled Bulk fanout (the throughput term) and a paced Control
// trickle (the latency term) — and records bulk frames/sec next to the
// control-plane p50/p99. The matrix answers the tuning question the
// adaptive policy automates: bigger batches buy syscall amortization,
// deadlines bound how long a corked frame can age, and the control
// class must never pay either cost (ctl frames bypass the cork).
//
// Every cell closes its books before reporting: the transport-level
// law (accepted = delivered + flush-lost + rx-dropped) must hold
// exactly, and the topic ledgers must account every fanout slot with
// slack no larger than the wire losses.

type aggResult struct {
	Mode             string  `json:"mode"` // uncorked | batch | adaptive
	BatchFrames      int     `json:"batch_frames"`
	FlushDeadlineUs  float64 `json:"flush_deadline_us"`
	FlushBudget      float64 `json:"flush_budget,omitempty"`
	BulkFramesPerSec float64 `json:"bulk_frames_per_sec"`
	BulkP50Us        float64 `json:"bulk_p50_us"`
	BulkP99Us        float64 `json:"bulk_p99_us"`
	CtlP50Us         float64 `json:"ctl_p50_us"`
	CtlP99Us         float64 `json:"ctl_p99_us"`
	CtlPublishes     uint64  `json:"ctl_publishes"`
	BulkPublishes    uint64  `json:"bulk_publishes"`
	Delivered        uint64  `json:"delivered"`
	RecvDropped      uint64  `json:"recv_dropped"`
	PubDropped       uint64  `json:"pub_dropped"`
	Throttled        uint64  `json:"throttled"`
	CtlBypass        uint64  `json:"ctl_bypass"`
	FlushHeld        uint64  `json:"flush_held"`
	FlushLost        uint64  `json:"flush_lost"`
	RxDrops          uint64  `json:"rx_drops"`
}

type aggReport struct {
	Benchmark   string      `json:"benchmark"`
	MessageSize int         `json:"message_size"`
	BulkSubs    int         `json:"bulk_subs"`
	Cores       int         `json:"cores"` // spinning engines contend below ~4
	Results     []aggResult `json:"results"`

	// The chosen operating point: the fastest corked/adaptive cell
	// whose control p99 stays within 1.2x the uncorked baseline, with
	// its throughput and latency ratios against that baseline.
	ChosenMode      string  `json:"chosen_mode"`
	ChosenBatch     int     `json:"chosen_batch_frames"`
	ChosenDeadline  float64 `json:"chosen_flush_deadline_us"`
	BulkSpeedup     float64 `json:"bulk_speedup_vs_uncorked"`
	CtlP99Ratio     float64 `json:"ctl_p99_ratio_vs_uncorked"`
	TargetsMet      bool    `json:"targets_met"` // speedup >= 1.5 and ratio <= 1.2
	TargetSpeedup   float64 `json:"target_speedup"`
	TargetP99Ratio  float64 `json:"target_p99_ratio"`
	UncorkedBulkFPS float64 `json:"uncorked_bulk_frames_per_sec"`
	UncorkedCtlP99  float64 `json:"uncorked_ctl_p99_us"`
}

// aggCell is one matrix point.
type aggCell struct {
	mode     string
	batch    int
	deadline time.Duration
	budget   float64
}

// runAgg runs the ablation matrix and writes the JSON report to path
// ("" or "-" = stdout only). publishes is the bulk publish count per
// cell; the control topic paces itself for the same wall window.
func runAgg(path string, publishes int) error {
	matrix := []aggCell{
		{mode: "uncorked"},
		{mode: "batch", batch: 4},
		{mode: "batch", batch: 16},
		{mode: "batch", batch: 64},
		{mode: "batch", batch: 16, deadline: 100 * time.Microsecond},
		{mode: "batch", batch: 16, deadline: 500 * time.Microsecond},
		{mode: "batch", batch: 64, deadline: 100 * time.Microsecond},
		{mode: "batch", batch: 64, deadline: 500 * time.Microsecond},
		{mode: "adaptive", batch: 64, deadline: 50 * time.Microsecond, budget: 0.25},
	}
	report := aggReport{
		Benchmark: "adaptive_aggregation", MessageSize: aggMsgSize, BulkSubs: aggBulkSubs,
		Cores:         runtime.NumCPU(),
		TargetSpeedup: 1.5, TargetP99Ratio: 1.2,
	}
	for _, cell := range matrix {
		r, err := aggOne(cell, publishes)
		if err != nil {
			return fmt.Errorf("agg %s b=%d dl=%v: %w", cell.mode, cell.batch, cell.deadline, err)
		}
		report.Results = append(report.Results, r)
		fmt.Printf("agg %-9s batch %2d  deadline %6.0fµs: %9.0f bulk frames/s  ctl p50 %7.1fµs p99 %7.1fµs  (bypass %d, held %d)\n",
			r.Mode, r.BatchFrames, r.FlushDeadlineUs, r.BulkFramesPerSec, r.CtlP50Us, r.CtlP99Us,
			r.CtlBypass, r.FlushHeld)
	}

	base := report.Results[0]
	report.UncorkedBulkFPS = base.BulkFramesPerSec
	report.UncorkedCtlP99 = base.CtlP99Us
	best := -1
	for i, r := range report.Results[1:] {
		if base.CtlP99Us > 0 && r.CtlP99Us > 1.2*base.CtlP99Us {
			continue
		}
		if best < 0 || r.BulkFramesPerSec > report.Results[1+best].BulkFramesPerSec {
			best = i
		}
	}
	if best < 0 {
		// No corked cell held the latency line: report the fastest one
		// anyway so the regression is visible in the ratios.
		for i, r := range report.Results[1:] {
			if best < 0 || r.BulkFramesPerSec > report.Results[1+best].BulkFramesPerSec {
				best = i
			}
		}
	}
	chosen := report.Results[1+best]
	report.ChosenMode = chosen.Mode
	report.ChosenBatch = chosen.BatchFrames
	report.ChosenDeadline = chosen.FlushDeadlineUs
	if base.BulkFramesPerSec > 0 {
		report.BulkSpeedup = chosen.BulkFramesPerSec / base.BulkFramesPerSec
	}
	if base.CtlP99Us > 0 {
		report.CtlP99Ratio = chosen.CtlP99Us / base.CtlP99Us
	}
	report.TargetsMet = report.BulkSpeedup >= report.TargetSpeedup &&
		report.CtlP99Ratio <= report.TargetP99Ratio
	fmt.Printf("agg operating point: %s batch %d deadline %.0fµs — bulk %.2fx uncorked, ctl p99 %.2fx (targets %.1fx / %.1fx: met=%v)\n",
		report.ChosenMode, report.ChosenBatch, report.ChosenDeadline,
		report.BulkSpeedup, report.CtlP99Ratio, report.TargetSpeedup, report.TargetP99Ratio, report.TargetsMet)

	var out io.Writer = os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

const (
	aggMsgSize  = 128
	aggBulkSubs = 4
)

// aggOne runs one matrix cell: two nettrans transports on loopback
// TCP, a publisher domain and a subscriber domain, a Bulk fanout and
// a paced Control trickle sharing the link.
func aggOne(cell aggCell, publishes int) (aggResult, error) {
	subReg := metrics.NewRegistry()
	pubCfg := nettrans.Config{
		Node: 0, Addr: "127.0.0.1:0", MessageSize: aggMsgSize, InboxDepth: 8192,
	}
	if cell.mode != "uncorked" {
		pubCfg.BatchWrites = true
		pubCfg.MaxBatchFrames = cell.batch
		pubCfg.FlushDeadline = cell.deadline
		if cell.budget > 0 {
			pubCfg.FlushBudget = cell.budget
			pubCfg.MaxFlushDelay = time.Millisecond
			// In-process shortcut for the stamp-trailer feedback loop:
			// the receiver's engine measures one-way latency into its
			// registry; a real deployment would carry the p99 back on
			// the wire.
			pubCfg.LatencyProbe = func() (float64, bool) {
				snap := subReg.Histogram("flipc_recv_latency_ns").Snapshot()
				if snap.Count == 0 {
					return 0, false
				}
				return snap.Quantile(0.99), true
			}
		}
	}
	aTr, err := nettrans.ListenConfig(pubCfg)
	if err != nil {
		return aggResult{}, err
	}
	defer aTr.Close()
	bTr, err := nettrans.ListenConfig(nettrans.Config{
		Node: 1, Addr: "127.0.0.1:0", MessageSize: aggMsgSize, InboxDepth: 8192,
	})
	if err != nil {
		return aggResult{}, err
	}
	defer bTr.Close()
	if err := aTr.Dial(1, bTr.Addr()); err != nil {
		return aggResult{}, err
	}

	pubD, err := core.NewDomain(core.Config{
		Node: 0, MessageSize: aggMsgSize, NumBuffers: 2048, MaxEndpoints: 64,
		DefaultQueueDepth: 64, Engine: engine.Config{Stamp: true},
	}, aTr)
	if err != nil {
		return aggResult{}, err
	}
	defer pubD.Close()
	subD, err := core.NewDomain(core.Config{
		Node: 1, MessageSize: aggMsgSize, NumBuffers: 2048, MaxEndpoints: 64,
		DefaultQueueDepth: 64, Engine: engine.Config{Metrics: subReg},
	}, bTr)
	if err != nil {
		return aggResult{}, err
	}
	defer subD.Close()
	pubD.Start()
	subD.Start()

	dir := topic.LocalDirectory{R: nameservice.NewTopicRegistry()}
	type sample struct {
		sentNs int64
		latUs  float64
	}
	type subRun struct {
		s   *topic.Subscriber
		lat []sample
	}
	var bulkRuns []*subRun
	for i := 0; i < aggBulkSubs; i++ {
		s, err := topic.NewSubscriber(subD, dir, "agg-bulk", topic.Bulk, 64, 64)
		if err != nil {
			return aggResult{}, err
		}
		bulkRuns = append(bulkRuns, &subRun{s: s})
	}
	ctlSub, err := topic.NewSubscriber(subD, dir, "agg-ctl", topic.Control, 32, 32)
	if err != nil {
		return aggResult{}, err
	}
	ctlRun := &subRun{s: ctlSub}

	bulkPub, err := topic.NewPublisher(pubD, dir, topic.PublisherConfig{
		Topic: "agg-bulk", Class: topic.Bulk, Depth: 64, Window: 256,
	})
	if err != nil {
		return aggResult{}, err
	}
	ctlPub, err := topic.NewPublisher(pubD, dir, topic.PublisherConfig{
		Topic: "agg-ctl", Class: topic.Control, Depth: 32, Window: 64,
	})
	if err != nil {
		return aggResult{}, err
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	drain := func(r *subRun) {
		defer wg.Done()
		idle := 0
		for {
			payload, _, ok := r.s.Receive()
			if !ok {
				select {
				case <-done:
					idle++
					if idle > 100 {
						return
					}
				default:
				}
				time.Sleep(50 * time.Microsecond)
				continue
			}
			idle = 0
			if len(payload) >= 8 {
				sent := int64(binary.BigEndian.Uint64(payload[:8]))
				r.lat = append(r.lat, sample{sent, float64(time.Now().UnixNano()-sent) / 1e3})
			}
		}
	}
	for _, r := range bulkRuns {
		wg.Add(1)
		go drain(r)
	}
	wg.Add(1)
	go drain(ctlRun)

	// Control trickle: one stamped publish every ctlGap until the bulk
	// loop finishes. Its tail latency is the number the flush deadline
	// must protect.
	const ctlGap = 200 * time.Microsecond
	ctlStop := make(chan struct{})
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		var payload [8]byte
		next := time.Now()
		for {
			select {
			case <-ctlStop:
				return
			default:
			}
			for time.Now().Before(next) {
				runtime.Gosched()
			}
			next = next.Add(ctlGap)
			binary.BigEndian.PutUint64(payload[:], uint64(time.Now().UnixNano()))
			ctlPub.Publish(payload[:])
		}
	}()

	// Bulk load: lightly paced so the offered rate is the same for
	// every cell and the cells differ only in how the transport moves
	// it — publish gap well under the per-frame wire cost, so the link
	// (and the flush policy) is the bottleneck, not the pacing.
	const bulkGap = 5 * time.Microsecond
	var payload [8]byte
	t0 := time.Now()
	next := t0
	for i := 0; i < publishes; i++ {
		for time.Now().Before(next) {
			runtime.Gosched()
		}
		next = next.Add(bulkGap)
		binary.BigEndian.PutUint64(payload[:], uint64(time.Now().UnixNano()))
		if _, err := bulkPub.Publish(payload[:]); err != nil {
			close(ctlStop)
			close(done)
			return aggResult{}, err
		}
	}
	elapsed := time.Since(t0)
	close(ctlStop)
	ctlWG.Wait()

	// Settle: corked frames drain on the engines' end-of-pass flushes;
	// the books close when every fanout slot is accounted, with slack
	// no larger than the wire's own counted losses.
	slots := func() uint64 {
		return bulkPub.Published()*uint64(aggBulkSubs) + ctlPub.Published()
	}
	accounted := func() uint64 {
		var got uint64
		for _, r := range bulkRuns {
			got += r.s.Received() + r.s.AppDrops()
		}
		got += ctlRun.s.Received() + ctlRun.s.AppDrops()
		got += bulkPub.Dropped() + bulkPub.Throttled()
		got += ctlPub.Dropped() + ctlPub.Throttled()
		return got
	}
	wireLost := func() uint64 {
		return aTr.Stats().FlushLost + bTr.Stats().RxDrops
	}
	settled := func() bool {
		a, b := aTr.Stats(), bTr.Stats()
		return accounted()+wireLost() >= slots() &&
			a.Sent == b.Delivered+a.FlushLost+b.RxDrops
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if settled() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()

	aSt, bSt := aTr.Stats(), bTr.Stats()
	// Transport-level conservation: every frame the transport accepted
	// was delivered, counted flush-lost, or counted rx-dropped.
	if aSt.Sent != bSt.Delivered+aSt.FlushLost+bSt.RxDrops {
		return aggResult{}, fmt.Errorf("transport conservation violated: accepted %d != delivered %d + flush-lost %d + rx-drops %d",
			aSt.Sent, bSt.Delivered, aSt.FlushLost, bSt.RxDrops)
	}
	// Topic-level: unaccounted fanout slots can only be wire losses.
	if acc, sl := accounted(), slots(); acc > sl || sl-acc > wireLost() {
		return aggResult{}, fmt.Errorf("topic conservation violated: accounted %d of %d slots, wire lost %d",
			acc, sl, wireLost())
	}

	res := aggResult{
		Mode:            cell.mode,
		BatchFrames:     cell.batch,
		FlushDeadlineUs: float64(cell.deadline) / 1e3,
		FlushBudget:     cell.budget,
		BulkPublishes:   bulkPub.Published(),
		CtlPublishes:    ctlPub.Published(),
		PubDropped:      bulkPub.Dropped() + ctlPub.Dropped(),
		Throttled:       bulkPub.Throttled() + ctlPub.Throttled(),
		CtlBypass:       aSt.CtlBypass,
		FlushHeld:       aSt.FlushHeld,
		FlushLost:       aSt.FlushLost,
		RxDrops:         bSt.RxDrops,
	}
	// Latency percentiles over the steady-state window only: the first
	// tenth warms the pipeline up, and anything published after the
	// bulk loop ended measures the backlog draining, not the flush
	// policy under load.
	lo := t0.Add(elapsed / 10).UnixNano()
	hi := t0.Add(elapsed).UnixNano()
	steady := func(rs ...*subRun) []float64 {
		var out []float64
		for _, r := range rs {
			for _, s := range r.lat {
				if s.sentNs >= lo && s.sentNs <= hi {
					out = append(out, s.latUs)
				}
			}
		}
		return out
	}
	for _, r := range bulkRuns {
		res.Delivered += r.s.Received()
		res.RecvDropped += r.s.AppDrops()
	}
	res.Delivered += ctlRun.s.Received()
	res.RecvDropped += ctlRun.s.AppDrops()
	res.BulkFramesPerSec = float64(bulkPub.Sent()) / elapsed.Seconds()
	pctl := func(samples []float64, p float64) float64 {
		if len(samples) == 0 {
			return 0
		}
		v, err := stats.Percentile(samples, p)
		if err != nil {
			return 0
		}
		return v
	}
	bulkLat := steady(bulkRuns...)
	ctlLat := steady(ctlRun)
	res.BulkP50Us = pctl(bulkLat, 50)
	res.BulkP99Us = pctl(bulkLat, 99)
	res.CtlP50Us = pctl(ctlLat, 50)
	res.CtlP99Us = pctl(ctlLat, 99)
	return res, nil
}
