// Command flipcbench regenerates the paper's evaluation artifacts —
// Figure 4 and every quantitative claim — from the reproduction's
// measured implementation and models (experiments E1–E10; see
// DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	flipcbench                  # run every experiment
//	flipcbench -experiment E4   # one experiment
//	flipcbench -seed 7          # change the jitter seed
//	flipcbench -list            # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flipc/internal/experiments"
)

type entry struct {
	id, what string
	run      func(seed int64) (experiments.Table, error)
}

var entries = []entry{
	{"E1", "Figure 4: latency vs message size", func(s int64) (experiments.Table, error) {
		r, err := experiments.E1Figure4(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E2", "120-byte latency across Paragon messaging systems", func(s int64) (experiments.Table, error) {
		r, err := experiments.E2Comparison(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E3", "validity-check overhead", func(s int64) (experiments.Table, error) {
		r, err := experiments.E3ValidityChecks(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E4", "cache-tuning ablation (locks + false sharing)", func(s int64) (experiments.Table, error) {
		r, err := experiments.E4CacheAblation(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E5", "cold-start anomaly", func(s int64) (experiments.Table, error) {
		r, err := experiments.E5ColdStart(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E6", "bandwidth implied by the slope", func(s int64) (experiments.Table, error) {
		r, err := experiments.E6BandwidthSlope(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E7", "small-message crossover vs PAM", func(s int64) (experiments.Table, error) {
		r, err := experiments.E7SmallMessageCrossover(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E8", "large-message throughput positioning", func(s int64) (experiments.Table, error) {
		r, err := experiments.E8LargeMessageThroughput(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E9", "drop semantics and layered flow control", func(s int64) (experiments.Table, error) {
		r, err := experiments.E9DropsAndFlowControl(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"E10", "KKT development binding vs native engine", func(s int64) (experiments.Table, error) {
		r, err := experiments.E10KKTVsNative(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"A1", "ablation: engine poll cadence", func(s int64) (experiments.Table, error) {
		r, err := experiments.A1PollInterval(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"A2", "ablation: prioritized transport extension", func(s int64) (experiments.Table, error) {
		r, err := experiments.A2PriorityTransport(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
	{"A3", "ablation: receive window vs burst loss", func(s int64) (experiments.Table, error) {
		r, err := experiments.A3ReceiveWindow(s)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table, nil
	}},
}

func main() {
	var (
		exp       = flag.String("experiment", "all", "experiment ID (E1..E10, A1..A3) or 'all'")
		seed      = flag.Int64("seed", 1996, "jitter seed (results are deterministic per seed)")
		list      = flag.Bool("list", false, "list experiments and exit")
		csv       = flag.Bool("csv", false, "emit CSV instead of the aligned table (single experiment only)")
		pubsub    = flag.Bool("pubsub", false, "run the wall-clock pub/sub fanout benchmark instead of the experiments")
		agg       = flag.Bool("agg", false, "run the adaptive-aggregation ablation (batch size x flush deadline over TCP) instead of the experiments")
		jsonPath  = flag.String("json", "", "with -pubsub/-agg/-gateway: also write the JSON report to this file")
		publishes = flag.Int("publishes", 1000, "with -pubsub: publishes per fanout width; with -agg: bulk publishes per cell")
		gatew     = flag.Bool("gateway", false, "run the gateway edge plane benchmark (loopback TCP clients) instead of the experiments")
		gwSizes   = flag.String("gateway-clients", "1000,10000", "with -gateway: comma-separated client population sizes")
		gwRounds  = flag.Int("gateway-rounds", 150, "with -gateway: steady-state publish rounds per class")
		gwDrive   = flag.String("gwdrive", "", "internal: run as the gateway bench client driver against this address")
		gwDriveN  = flag.Int("gwdrive-n", 0, "internal: client driver population size")
	)
	flag.Parse()

	if *gwDrive != "" {
		if err := runGatewayDriver(*gwDrive, *gwDriveN); err != nil {
			fmt.Fprintf(os.Stderr, "flipcbench: gwdrive: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *gatew {
		if err := runGatewayBench(*jsonPath, *gwSizes, *gwRounds); err != nil {
			fmt.Fprintf(os.Stderr, "flipcbench: gateway: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *agg {
		if err := runAgg(*jsonPath, *publishes); err != nil {
			fmt.Fprintf(os.Stderr, "flipcbench: agg: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *pubsub {
		if err := runPubsub(*jsonPath, *publishes); err != nil {
			fmt.Fprintf(os.Stderr, "flipcbench: pubsub: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range entries {
			fmt.Printf("%-4s %s\n", e.id, e.what)
		}
		return
	}
	want := strings.ToUpper(*exp)
	if want == "ALL" {
		if err := experiments.RunAll(os.Stdout, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "flipcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range entries {
		if e.id == want {
			t, err := e.run(*seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flipcbench: %s: %v\n", e.id, err)
				os.Exit(1)
			}
			var perr error
			if *csv {
				perr = t.Fcsv(os.Stdout)
			} else {
				perr = t.Fprint(os.Stdout)
			}
			if perr != nil {
				fmt.Fprintf(os.Stderr, "flipcbench: %v\n", perr)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "flipcbench: unknown experiment %q (use -list)\n", *exp)
	os.Exit(2)
}
