package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"flipc/internal/core"
	"flipc/internal/gateway"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/stats"
	"flipc/internal/topic"
	"flipc/internal/wire"
)

// The gateway benchmark: wall-clock edge plane throughput and one-way
// latency through a real flipcgw-style stack — Mux on the in-process
// Fabric, clients over loopback TCP speaking the framing protocol. Two
// phases per population size: a connect storm (dial + hello + wildcard
// subscribe + ping barrier for every client, timed end to end) and a
// steady state (paced stamped publishes fanned through the pattern
// plane to every client, split across the three priority classes).
//
// The client population runs in a re-exec'd child process: a TCP
// connection costs two file descriptors in one process and only one on
// each side of a process boundary, so the 10k row fits inside the
// typical fd ceiling — and the split makes the conservation check
// cross-process: the parent's mux delivery ledger must agree exactly
// with what the child decoded back out of the framing.

type gwBenchClass struct {
	Class       string  `json:"class"`
	Clients     int     `json:"clients"`
	Publishes   uint64  `json:"publishes"`
	Delivered   uint64  `json:"delivered"`
	Dropped     uint64  `json:"dropped"`
	Throttled   uint64  `json:"throttled"`
	ChildRecv   uint64  `json:"child_received"`
	LatencyP50  float64 `json:"latency_p50_us"`
	LatencyP99  float64 `json:"latency_p99_us"`
	Samples     int     `json:"latency_samples"`
	InboxDrops  uint64  `json:"inbox_drops"`
	QueueDrops  uint64  `json:"queue_drops"` // dropped + throttled (per-client bound)
	ConservedOK bool    `json:"conserved"`
}

type gwBenchResult struct {
	Clients          int            `json:"clients"`
	ConnectStormMs   float64        `json:"connect_storm_ms"`
	ConnsPerSec      float64        `json:"conns_per_sec"`
	SteadyRounds     int            `json:"steady_rounds"`
	GapUs            float64        `json:"round_gap_us"` // measured closed-loop round period
	ThrottledClients int            `json:"throttled_clients"`
	PerClass         []gwBenchClass `json:"per_class"`
}

type gwBenchReport struct {
	Benchmark   string          `json:"benchmark"`
	MessageSize int             `json:"message_size"`
	Results     []gwBenchResult `json:"results"`
}

// runGatewayBench runs the population matrix and writes the JSON report.
func runGatewayBench(path, sizesCSV string, rounds int) error {
	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 3 {
			return fmt.Errorf("bad -gateway-clients entry %q", s)
		}
		sizes = append(sizes, n)
	}
	report := gwBenchReport{Benchmark: "gateway_edge", MessageSize: 128}
	for _, n := range sizes {
		res, err := gatewayBenchOne(n, rounds)
		if err != nil {
			return fmt.Errorf("gateway %d clients: %w", n, err)
		}
		report.Results = append(report.Results, res)
		fmt.Printf("gateway %5d clients: storm %8.1fms (%7.0f conns/s)\n", n, res.ConnectStormMs, res.ConnsPerSec)
		for _, pc := range res.PerClass {
			fmt.Printf("  %-7s %4d clients: p50 %8.1fµs  p99 %8.1fµs  (delivered %d, queue-dropped %d, samples %d)\n",
				pc.Class, pc.Clients, pc.LatencyP50, pc.LatencyP99, pc.Delivered, pc.QueueDrops, pc.Samples)
		}
	}
	var out io.Writer = os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// benchClasses maps class index to the topic each publisher drives and
// the wildcard each client subscribes; clients take class i%3.
var benchClasses = [gateway.NumClasses]struct {
	class topic.Class
	topic string
}{
	{topic.Bulk, "bench.bulk.rate"},
	{topic.Normal, "bench.norm.rate"},
	{topic.Control, "bench.ctl.rate"},
}

func benchPattern(lane int) string {
	return benchClasses[lane].topic[:strings.LastIndexByte(benchClasses[lane].topic, '.')] + ".*"
}

// gwAckTopic carries the child's pacing echoes back through the
// gateway's client-publish path.
const gwAckTopic = "bench.ack"

// gatewayBenchOne runs one population size: gateway + publishers in
// this process, the client population in a re-exec'd child.
func gatewayBenchOne(nClients, rounds int) (gwBenchResult, error) {
	raiseFDLimit()

	fabric := interconnect.NewFabric(4096)
	mkDomain := func(node wire.NodeID) (*core.Domain, error) {
		tr, err := fabric.Attach(node)
		if err != nil {
			return nil, err
		}
		d, err := core.NewDomain(core.Config{
			Node: node, MessageSize: 128,
			NumBuffers: 2048, MaxEndpoints: 64, DefaultQueueDepth: 64,
		}, tr)
		if err != nil {
			return nil, err
		}
		d.Start()
		return d, nil
	}
	gwD, err := mkDomain(0)
	if err != nil {
		return gwBenchResult{}, err
	}
	defer gwD.Close()
	pubD, err := mkDomain(1)
	if err != nil {
		return gwBenchResult{}, err
	}
	defer pubD.Close()

	dir := topic.LocalDirectory{R: nameservice.NewTopicRegistry()}
	mux, err := gateway.NewMux(gwD, gateway.Config{
		Name: "gw-bench", Dir: dir,
		InboxBuffers: 128, ClientQueue: 256, ThrottleAt: 32,
		MaxPublishers: 8,
	})
	if err != nil {
		return gwBenchResult{}, err
	}
	srv := gateway.NewServer(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return gwBenchResult{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// The client population, one process over: inherits our binary,
	// dials the storm, reports READY, decodes until EOF, reports RESULT.
	child := exec.Command(os.Args[0],
		"-gwdrive", ln.Addr().String(), "-gwdrive-n", strconv.Itoa(nClients))
	child.Stderr = os.Stderr
	childOut, err := child.StdoutPipe()
	if err != nil {
		return gwBenchResult{}, err
	}
	if err := child.Start(); err != nil {
		return gwBenchResult{}, fmt.Errorf("spawning the client driver: %w", err)
	}
	defer child.Process.Kill()
	sc := bufio.NewScanner(childOut)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	readLine := func(prefix string, timeout time.Duration) (string, error) {
		lineCh := make(chan string, 1)
		errCh := make(chan error, 1)
		go func() {
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, prefix) {
					lineCh <- strings.TrimPrefix(line, prefix)
					return
				}
			}
			errCh <- fmt.Errorf("client driver exited before %q (%v)", prefix, sc.Err())
		}()
		select {
		case l := <-lineCh:
			return l, nil
		case err := <-errCh:
			return "", err
		case <-time.After(timeout):
			return "", fmt.Errorf("client driver stuck before %q", prefix)
		}
	}

	stormLine, err := readLine("READY ", 5*time.Minute)
	if err != nil {
		return gwBenchResult{}, err
	}
	stormMs, err := strconv.ParseFloat(stormLine, 64)
	if err != nil {
		return gwBenchResult{}, fmt.Errorf("bad READY line %q", stormLine)
	}
	if h := mux.Health(); h.Conns != nClients || h.Presence != nClients {
		return gwBenchResult{}, fmt.Errorf("storm incomplete on the gateway: %d conns, %d leases, want %d", h.Conns, h.Presence, nClients)
	}

	// Publishers land after the storm so the first plan already holds
	// the pattern plane; the ping barrier guaranteed every subscribe is
	// registered, not merely sent.
	var pubs [gateway.NumClasses]*topic.Publisher
	for lane, bc := range benchClasses {
		p, err := topic.NewPublisher(pubD, dir, topic.PublisherConfig{
			Topic: bc.topic, Class: bc.class, Depth: 64, Window: 64, RefreshEvery: 16,
		})
		if err != nil {
			return gwBenchResult{}, err
		}
		if p.PatternSubscribers() == 0 {
			return gwBenchResult{}, fmt.Errorf("%s plan missing the gateway pattern plane", bc.topic)
		}
		pubs[lane] = p
	}

	// Steady state: one stamped publish per class per round, closed-loop
	// paced — the first client of each class echoes every delivery back
	// as a client publish on the ack topic, and the next round waits
	// for all three echoes. The loop closes through the entire stack
	// both ways (publish → fabric → mux → framing → TCP → child decode
	// → client publish → mux → fabric → this subscriber), so the
	// samples price the pipeline, not an accumulating backlog — and the
	// client→gateway publish path is measured under load for free.
	ackSub, err := topic.NewSubscriber(pubD, dir, gwAckTopic, topic.Normal, 64, 64)
	if err != nil {
		return gwBenchResult{}, err
	}
	payload := make([]byte, 16)
	minGap := 500 * time.Microsecond
	acked := 0
	steadyT0 := time.Now()
	for r := 0; r < rounds; r++ {
		next := time.Now().Add(minGap)
		for lane := range benchClasses {
			binary.BigEndian.PutUint64(payload[:8], uint64(time.Now().UnixNano()))
			if _, err := pubs[lane].Publish(payload); err != nil {
				return gwBenchResult{}, err
			}
		}
		want := (r + 1) * gateway.NumClasses
		ackDeadline := time.Now().Add(500 * time.Millisecond)
		for acked < want && time.Now().Before(ackDeadline) {
			for {
				if _, _, ok := ackSub.Receive(); !ok {
					break
				}
				acked++
			}
			time.Sleep(100 * time.Microsecond)
		}
		for time.Now().Before(next) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	gap := time.Since(steadyT0) / time.Duration(rounds)
	throttledClients := mux.Health().Throttled

	// Quiesce at the mux boundary: every fanout-sent frame has arrived
	// (drained or counted at the inbox), and every matched frame was
	// popped to a writer or counted against a queue bound.
	var wantArrived uint64
	for _, p := range pubs {
		wantArrived += p.Sent()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := mux.Stats()
		arrived := st.Received
		for lane := 0; lane < gateway.NumClasses; lane++ {
			arrived += mux.InboxDrops(lane)
		}
		var del, drop, thr uint64
		queued := 0
		for _, c := range mux.Clients() {
			d, dr, th := c.Ledgers()
			del, drop, thr = del+d, drop+dr, thr+th
			queued += c.Queued()
		}
		if arrived == wantArrived && queued == 0 && st.Matched == del+drop+thr {
			break
		}
		if time.Now().After(deadline) {
			return gwBenchResult{}, fmt.Errorf("gateway never quiesced: matched %d, accounted %d, queued %d",
				st.Matched, del+drop+thr, queued)
		}
		time.Sleep(time.Millisecond)
	}

	// Attribute the mux ledgers per class before teardown (clients
	// detach on close). Client i is named c<i> and runs class i%3.
	var classLedger [gateway.NumClasses]struct{ del, drop, thr uint64 }
	var classClients [gateway.NumClasses]int
	for _, c := range mux.Clients() {
		name := c.Name()
		if !strings.HasPrefix(name, "c") {
			return gwBenchResult{}, fmt.Errorf("unexpected client name %q", name)
		}
		i, err := strconv.Atoi(name[1:])
		if err != nil {
			return gwBenchResult{}, fmt.Errorf("unexpected client name %q", name)
		}
		lane := i % gateway.NumClasses
		d, dr, th := c.Ledgers()
		classLedger[lane].del += d
		classLedger[lane].drop += dr
		classLedger[lane].thr += th
		classClients[lane]++
	}
	var inboxDrops [gateway.NumClasses]uint64
	for lane := range inboxDrops {
		inboxDrops[lane] = mux.InboxDrops(lane)
	}

	// TCP flushes written frames before FIN, so closing the server is
	// the end-of-stream marker the child drains to.
	time.Sleep(200 * time.Millisecond)
	if err := srv.Close(); err != nil {
		return gwBenchResult{}, err
	}
	<-serveErr

	resultLine, err := readLine("RESULT ", time.Minute)
	if err != nil {
		return gwBenchResult{}, err
	}
	var childRes gwDriveResult
	if err := json.Unmarshal([]byte(resultLine), &childRes); err != nil {
		return gwBenchResult{}, fmt.Errorf("bad RESULT line: %w", err)
	}
	if err := child.Wait(); err != nil {
		return gwBenchResult{}, fmt.Errorf("client driver: %w", err)
	}

	res := gwBenchResult{
		Clients:          nClients,
		ConnectStormMs:   stormMs,
		ConnsPerSec:      float64(nClients) / (stormMs / 1e3),
		SteadyRounds:     rounds,
		GapUs:            float64(gap.Microseconds()),
		ThrottledClients: throttledClients,
	}
	for lane, bc := range benchClasses {
		cc := childRes.PerClass[lane]
		led := classLedger[lane]
		pc := gwBenchClass{
			Class:       bc.class.String(),
			Clients:     classClients[lane],
			Publishes:   pubs[lane].Published(),
			Delivered:   led.del,
			Dropped:     led.drop,
			Throttled:   led.thr,
			ChildRecv:   cc.Received,
			LatencyP50:  cc.P50,
			LatencyP99:  cc.P99,
			Samples:     cc.Samples,
			InboxDrops:  inboxDrops[lane],
			QueueDrops:  led.drop + led.thr,
			ConservedOK: cc.Received == led.del,
		}
		if !pc.ConservedOK {
			return res, fmt.Errorf("%s conservation broke across the process boundary: child decoded %d, mux delivered %d",
				pc.Class, cc.Received, led.del)
		}
		res.PerClass = append(res.PerClass, pc)
	}
	return res, nil
}

// raiseFDLimit lifts the soft fd limit to the hard limit; two fds per
// client connection in this process pair is the bench's budget.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil && rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}

// ---- the client driver (runs in the re-exec'd child) ----

type gwDriveClass struct {
	Received uint64  `json:"received"`
	P50      float64 `json:"p50_us"`
	P99      float64 `json:"p99_us"`
	Samples  int     `json:"samples"`
}

type gwDriveResult struct {
	PerClass [gateway.NumClasses]gwDriveClass `json:"per_class"`
}

// runGatewayDriver is the child: dial the storm, report READY with the
// storm duration, decode deliveries until the server hangs up, report
// RESULT. Protocol lines go to stdout; anything human to stderr.
func runGatewayDriver(addr string, n int) error {
	raiseFDLimit()
	type cstate struct {
		conn *gateway.Conn
		lat  []float64
		recv uint64
	}
	clients := make([]*cstate, n)

	// Connect storm, bounded parallelism: dial + hello + subscribe +
	// ping barrier. The pong proves the gateway processed the subscribe
	// (one in-order stream per connection), so storm completion means
	// every client is live on the pattern plane, not merely connected.
	t0 := time.Now()
	sem := make(chan struct{}, 256)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			conn, err := gateway.Dial(addr, "c"+strconv.Itoa(i))
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", i, err)
				return
			}
			lane := i % gateway.NumClasses
			if err := conn.Subscribe(benchPattern(lane), benchClasses[lane].class); err != nil {
				errs <- err
				return
			}
			if err := conn.Ping(nil); err != nil {
				errs <- err
				return
			}
			conn.SetReadDeadline(time.Now().Add(time.Minute))
			for {
				fr, err := conn.Recv()
				if err != nil {
					errs <- fmt.Errorf("client %d barrier: %w", i, err)
					return
				}
				if fr.Op == gateway.OpPong {
					break
				}
			}
			conn.SetReadDeadline(time.Time{})
			clients[i] = &cstate{conn: conn}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	fmt.Printf("READY %.3f\n", float64(time.Since(t0).Nanoseconds())/1e6)

	// Steady state: every client decodes deliveries (each one crossed
	// publish → fabric → mux → framing → TCP) until EOF ends the run.
	// The first client of each class echoes every delivery back as a
	// client publish — the parent's pacing signal.
	for i, cs := range clients {
		cs, ack := cs, i < gateway.NumClasses
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				fr, err := cs.conn.RecvDeliver()
				if err != nil {
					return
				}
				cs.recv++
				if len(fr.Payload) >= 8 {
					sent := int64(binary.BigEndian.Uint64(fr.Payload[:8]))
					cs.lat = append(cs.lat, float64(time.Now().UnixNano()-sent)/1e3)
				}
				if ack {
					if err := cs.conn.Publish(gwAckTopic, topic.Normal, fr.Payload[:8]); err != nil {
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	var out gwDriveResult
	var lats [gateway.NumClasses][]float64
	for i, cs := range clients {
		lane := i % gateway.NumClasses
		out.PerClass[lane].Received += cs.recv
		lats[lane] = append(lats[lane], cs.lat...)
	}
	for lane := range lats {
		out.PerClass[lane].Samples = len(lats[lane])
		if len(lats[lane]) > 0 {
			p50, err := stats.Percentile(lats[lane], 50)
			if err != nil {
				return err
			}
			p99, err := stats.Percentile(lats[lane], 99)
			if err != nil {
				return err
			}
			out.PerClass[lane].P50, out.PerClass[lane].P99 = p50, p99
		}
	}
	enc, err := json.Marshal(out)
	if err != nil {
		return err
	}
	fmt.Printf("RESULT %s\n", enc)
	return nil
}
