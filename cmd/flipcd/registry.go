package main

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"flipc/internal/core"
	"flipc/internal/nameservice"
	"flipc/internal/obs"
	"flipc/internal/registrystore"
	"flipc/internal/shardmap"
	"flipc/internal/topic"
	"flipc/internal/wire"
)

// registryOpts configures the daemon's registry role.
type registryOpts struct {
	// WALDir is the durable store directory; empty runs the registry
	// volatile (pre-durability behavior).
	WALDir string
	// Standby starts the node as a standby replica instead of promoting
	// it to primary. Requires WALDir and StreamAddr.
	Standby bool
	// StreamAddr is the primary registry server's endpoint address
	// (hex, as printed by the primary at startup) the standby resolves
	// the replication stream and resync fetches through.
	StreamAddr string
	// LeaseInterval is the housekeeping cadence: lease sweeps,
	// replication pumping, compaction checks.
	LeaseInterval time.Duration
	// CompactEvery compacts the log once it accumulates this many
	// records.
	CompactEvery int
	// FailoverAfter promotes a standby that has seen no stream progress
	// for this long (0 = promote only on SIGUSR1).
	FailoverAfter time.Duration
	// Shard is this node's shard id in a sharded registry deployment
	// (meaningful only with ShardMap).
	Shard uint32
	// ShardMap makes the registry sharded: either an inline spec
	// ("0@hexaddr,1@hexaddr*weight,...", see shardmap.ParseSpec) or a
	// path to a shard-map journal (detected by a path separator). The
	// node serves only topics the map assigns to Shard, replicates over
	// its own "!registry/<shard>" stream, and answers the shard-map
	// remote op.
	ShardMap string
}

// registryNode bundles the registry pieces of one flipcd process: the
// in-band server, optionally a durable store with role manager, and —
// depending on role — the replication feed (primary) or the stream
// apply loop (standby).
type registryNode struct {
	opts registryOpts
	d    *core.Domain
	reg  *nameservice.TopicRegistry
	srv  *nameservice.Server
	st   *registrystore.Store
	mgr  *registrystore.Manager
	feed *registrystore.Feed

	apply  *registrystore.Apply
	client *nameservice.Client // resync fetches from the primary

	seen           map[int]uint64 // quarantine episodes already evicted
	lastSeq        uint64         // stream progress markers (previous tick)
	lastHeartbeats uint64
	lastMoved      time.Time
	promoteReq     chan struct{}

	// Sharded deployments: the shard map (journaled or static), this
	// node's shard id, and the peer-shard probe state behind the
	// /healthz roll-up.
	smap       *shardmap.Map     // static map (spec-configured)
	sjournal   *shardmap.Journal // journal-backed map (takes precedence)
	peerMu     sync.Mutex
	peerCli    map[uint32]*nameservice.Client // lazy per-shard probe clients
	peerStatus map[uint32]obs.ShardJSON       // last probe result per shard
}

// sharded reports whether this node runs a sharded registry.
func (rn *registryNode) sharded() bool { return rn.smap != nil || rn.sjournal != nil }

// shardMap returns the current shard map (nil when unsharded).
func (rn *registryNode) shardMap() *shardmap.Map {
	if rn.sjournal != nil {
		return rn.sjournal.Map()
	}
	return rn.smap
}

// replicationTopic is this node's replication stream: the shared
// "!registry" when unsharded, the shard's own "!registry/<n>" stream
// in a sharded deployment — so one shard's failover never disturbs
// another shard's feed or standby subscription.
func (rn *registryNode) replicationTopic() string {
	if rn.sharded() {
		return registrystore.ShardReplicationTopic(rn.opts.Shard)
	}
	return registrystore.ReplicationTopic
}

// startRegistry brings up the registry role on domain d: recovers the
// durable store (if configured), starts the in-band server, and wires
// the role-appropriate replication side.
func startRegistry(d *core.Domain, dir *nameservice.Directory, opts registryOpts) (*registryNode, error) {
	rn := &registryNode{
		opts: opts, d: d,
		reg:        nameservice.NewTopicRegistry(),
		seen:       make(map[int]uint64),
		lastMoved:  time.Now(),
		promoteReq: make(chan struct{}, 1),
	}
	if opts.Standby && (opts.WALDir == "" || opts.StreamAddr == "") {
		return nil, fmt.Errorf("flipcd: -standby requires -waldir and -registry-stream")
	}
	if opts.ShardMap != "" {
		if strings.ContainsRune(opts.ShardMap, '/') || strings.ContainsRune(opts.ShardMap, '\\') {
			j, err := shardmap.OpenJournal(opts.ShardMap, shardmap.JournalOptions{})
			if err != nil {
				return nil, err
			}
			rn.sjournal = j
		} else {
			m, err := shardmap.ParseSpec(opts.ShardMap)
			if err != nil {
				return nil, err
			}
			rn.smap = m
		}
		if _, ok := rn.shardMap().Entry(opts.Shard); !ok {
			return nil, fmt.Errorf("flipcd: shard %d not in map %q", opts.Shard, opts.ShardMap)
		}
		rn.peerCli = make(map[uint32]*nameservice.Client)
		rn.peerStatus = make(map[uint32]obs.ShardJSON)
	}
	if opts.WALDir != "" {
		st, err := registrystore.Open(opts.WALDir, rn.reg, registrystore.Options{})
		if err != nil {
			return nil, err
		}
		rn.st = st
		rn.mgr = registrystore.NewManager(rn.reg, st)
	}
	srv, err := nameservice.NewServerWith(d, dir, rn.reg, 64)
	if err != nil {
		return nil, err
	}
	rn.srv = srv
	if rn.mgr != nil {
		srv.SetInfo(func() nameservice.RegistryInfo {
			h := rn.mgr.Health()
			return nameservice.RegistryInfo{
				Primary: h.Role == "primary", Gen: h.RegistryGen, Seq: h.Seq, Epoch: h.Epoch,
			}
		})
	}
	if rn.sharded() {
		srv.SetShards(opts.Shard, rn.shardMap)
	}

	switch {
	case rn.mgr == nil:
		// Volatile registry: nothing to fence or replicate.
	case opts.Standby:
		if err := rn.startStandby(); err != nil {
			return nil, err
		}
	default:
		if err := rn.startPrimary(); err != nil {
			return nil, err
		}
	}
	go srv.Serve(5)
	return rn, nil
}

// startPrimary attaches the replication feed and fences a new
// incarnation.
func (rn *registryNode) startPrimary() error {
	if err := rn.ensureFeed(); err != nil {
		return err
	}
	rn.mgr.Promote()
	return nil
}

// ensureFeed creates and attaches the replication feed once. The feed
// publishes into the reserved control topic on this registry itself;
// with no standby subscribed the fanout plan is empty and pumping is a
// no-op.
func (rn *registryNode) ensureFeed() error {
	if rn.feed != nil {
		return nil
	}
	pub, err := topic.NewPublisher(rn.d, topic.LocalDirectory{R: rn.reg}, topic.PublisherConfig{
		Topic: rn.replicationTopic(), Class: registrystore.ReplicationClass,
		RefreshEvery: 1, Window: 64,
	})
	if err != nil {
		return err
	}
	rn.feed = registrystore.NewFeed(pub, rn.d.MaxPayload())
	rn.mgr.AttachFeed(rn.feed)
	return nil
}

// startStandby subscribes to the primary's replication stream through
// the remote directory and bootstraps a full-state resync.
func (rn *registryNode) startStandby() error {
	addr, err := parseEndpointAddr(rn.opts.StreamAddr)
	if err != nil {
		return err
	}
	client, err := nameservice.NewClient(rn.d, addr)
	if err != nil {
		return err
	}
	// The standby subscribes to a reserved "!"-prefixed stream: mark
	// the client privileged so the server admits it.
	client.Privileged = true
	rn.client = client
	rdir := topic.RemoteDirectory{C: client}
	sub, err := topic.NewSubscriber(rn.d, rdir, rn.replicationTopic(),
		registrystore.ReplicationClass, 64, 64)
	if err != nil {
		return err
	}
	rn.apply = registrystore.NewApply(sub, rn.reg, rn.st)
	return rn.resyncFromPrimary()
}

// resyncFromPrimary rebuilds the replica's full state over the remote
// protocol: registry info (generation + pre-export sequence), the
// paged topic list, and one paged snapshot per topic. Remote snapshots
// do not carry lease epochs, so every imported lease is restamped —
// the same re-validation window a takeover grants.
func (rn *registryNode) resyncFromPrimary() error {
	const tmo = 2 * time.Second
	info, err := rn.client.RegistryInfo(tmo)
	if err != nil {
		return err
	}
	names, err := rn.client.TopicList(tmo)
	if err != nil {
		return err
	}
	state := nameservice.RegistryState{Gen: info.Gen, Epoch: info.Epoch}
	for _, name := range names {
		snap, err := rn.client.TopicSnapshot(name, tmo)
		if err != nil {
			return err
		}
		state.Topics = append(state.Topics, nameservice.TopicState{
			Name: name, Class: snap.Class, Gen: snap.Gen, Subs: snap.Subs,
		})
	}
	if err := rn.apply.Resync(state, info.Seq); err != nil {
		return err
	}
	rn.reg.RestampLeases()
	return nil
}

// requestPromote asks housekeeping to promote this node (SIGUSR1, or
// operator tooling).
func (rn *registryNode) requestPromote() {
	select {
	case rn.promoteReq <- struct{}{}:
	default:
	}
}

// promote fences this node strictly above everything the old primary
// served and starts serving mutations — including a replication feed
// of its own, so the next standby can follow this node.
func (rn *registryNode) promote() {
	if rn.mgr == nil {
		return
	}
	if rn.apply != nil {
		rn.mgr.ObservePeer(rn.apply.PrimaryGen())
	}
	if err := rn.ensureFeed(); err != nil {
		fmt.Printf("flipcd: promoted without replication feed: %v\n", err)
	}
	gen := rn.mgr.Promote()
	fmt.Printf("flipcd: registry promoted to primary at generation %d\n", gen)
}

// housekeeping runs the registry's periodic work until stop closes:
// lease sweeps, quarantine eviction, replication pumping, compaction
// (primary); stream draining, lease renewal, gap resync, and failover
// detection (standby).
func (rn *registryNode) housekeeping(stop <-chan struct{}) {
	tick := time.NewTicker(rn.opts.LeaseInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-rn.promoteReq:
			rn.promote()
		case <-tick.C:
		}
		if rn.sharded() {
			rn.probeShards()
		}
		if rn.mgr == nil || rn.mgr.Role() == registrystore.RolePrimary {
			rn.reg.Advance()
			if n := topic.EvictQuarantined(rn.d, rn.reg, rn.seen); n > 0 {
				fmt.Printf("flipcd: evicted %d subscriptions of quarantined endpoints\n", n)
			}
			if rn.mgr != nil {
				rn.mgr.Heartbeat()
				if rn.feed != nil {
					if _, err := rn.feed.Pump(); err != nil {
						fmt.Printf("flipcd: replication pump: %v\n", err)
					}
				}
				if rn.st.WALRecords() >= rn.opts.CompactEvery {
					if err := rn.st.Compact(rn.reg); err != nil {
						fmt.Printf("flipcd: compaction: %v\n", err)
					}
				}
			}
			continue
		}
		// Standby: follow the stream. A self-demoted ex-primary (store
		// failure) has no stream attached; it idles until an operator
		// intervenes.
		if rn.apply == nil {
			continue
		}
		rn.apply.Drain()
		if rn.apply.NeedResync() {
			if err := rn.resyncFromPrimary(); err != nil {
				fmt.Printf("flipcd: standby resync: %v\n", err)
			}
		}
		if err := rn.apply.Renew(); err != nil {
			fmt.Printf("flipcd: stream lease renewal: %v\n", err)
		}
		if rn.streamSilent() {
			fmt.Printf("flipcd: no stream progress for %v, taking over\n", rn.opts.FailoverAfter)
			rn.promote()
		}
	}
}

// streamSilent records replication-stream progress and reports whether
// the stream has been silent past the failover timeout. Progress is a
// *change* in the applied sequence number or the heartbeat count since
// the previous tick — both counters are cumulative, so comparing
// against the last observed values is what distinguishes "the primary
// is alive" from "the primary was alive once".
func (rn *registryNode) streamSilent() bool {
	seq, hb := rn.apply.LastSeq(), rn.apply.Heartbeats()
	if seq != rn.lastSeq || hb != rn.lastHeartbeats {
		rn.lastSeq, rn.lastHeartbeats = seq, hb
		rn.lastMoved = time.Now()
	}
	return rn.opts.FailoverAfter > 0 && time.Since(rn.lastMoved) > rn.opts.FailoverAfter
}

// probeTimeout bounds one peer-shard RegistryInfo probe. Short: the
// probe runs inline on the housekeeping tick and a dead shard must not
// stall lease sweeps.
const probeTimeout = 250 * time.Millisecond

// probeShards refreshes the per-shard status cache behind the
// /healthz roll-up: the local shard is read from the manager; every
// other shard is probed at its map address hint with a registry-info
// call. Shards with no hint report unprobed (the roll-up treats them
// as unknown, not dead).
func (rn *registryNode) probeShards() {
	m := rn.shardMap()
	if m == nil {
		return
	}
	for _, e := range m.Entries() {
		st := obs.ShardJSON{Shard: e.ID, Role: "unknown"}
		switch {
		case e.ID == rn.opts.Shard:
			st.Probed = true
			if rn.mgr != nil {
				h := rn.mgr.Health()
				st.Role, st.Gen, st.Seq = h.Role, h.RegistryGen, h.Seq
				st.Primary = h.Role == "primary"
			} else {
				st.Role, st.Primary = "primary", true // volatile registry
			}
		case e.Addr != 0:
			info, err := rn.probePeer(e.ID, wire.Addr(e.Addr))
			if err != nil {
				st.Err = err.Error()
				break
			}
			st.Probed = true
			st.Primary = info.Primary
			st.Gen, st.Seq = info.Gen, info.Seq
			if info.Primary {
				st.Role = "primary"
			} else {
				st.Role = "standby"
			}
		}
		rn.peerMu.Lock()
		rn.peerStatus[e.ID] = st
		rn.peerMu.Unlock()
	}
}

// probePeer performs one registry-info call against a peer shard,
// lazily creating (and caching) the probe client for its address.
func (rn *registryNode) probePeer(shard uint32, addr wire.Addr) (nameservice.RegistryInfo, error) {
	rn.peerMu.Lock()
	cli := rn.peerCli[shard]
	rn.peerMu.Unlock()
	if cli == nil {
		var err error
		cli, err = nameservice.NewClient(rn.d, addr)
		if err != nil {
			return nameservice.RegistryInfo{}, err
		}
		rn.peerMu.Lock()
		rn.peerCli[shard] = cli
		rn.peerMu.Unlock()
	}
	return cli.RegistryInfo(probeTimeout)
}

// shardHealth is the /healthz and /metrics roll-up source: the cached
// per-shard status, ordered by shard id (the map's entry order).
func (rn *registryNode) shardHealth() []obs.ShardJSON {
	m := rn.shardMap()
	if m == nil {
		return nil
	}
	rn.peerMu.Lock()
	defer rn.peerMu.Unlock()
	out := make([]obs.ShardJSON, 0, m.Len())
	for _, e := range m.Entries() {
		if st, ok := rn.peerStatus[e.ID]; ok {
			out = append(out, st)
		} else {
			out = append(out, obs.ShardJSON{Shard: e.ID, Role: "unknown"})
		}
	}
	return out
}

// parseEndpointAddr parses a hex endpoint address as flipcd prints them
// (with or without the 0x prefix).
func parseEndpointAddr(s string) (wire.Addr, error) {
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	v, err := strconv.ParseUint(s, 16, 32)
	if err != nil {
		return wire.NilAddr, fmt.Errorf("flipcd: bad endpoint address %q: %w", s, err)
	}
	a := wire.Addr(v)
	if !a.Valid() {
		return wire.NilAddr, fmt.Errorf("flipcd: invalid endpoint address %q", s)
	}
	return a, nil
}
