package main

import (
	"testing"
	"time"

	"flipc/internal/core"
	"flipc/internal/interconnect"
	"flipc/internal/nameservice"
	"flipc/internal/registrystore"
	"flipc/internal/topic"
	"flipc/internal/wire"
)

func testDomain(t *testing.T, fabric *interconnect.Fabric, node wire.NodeID) *core.Domain {
	t.Helper()
	tr, err := fabric.Attach(node)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDomain(core.Config{Node: node, MessageSize: 256, NumBuffers: 256}, tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	d.Start()
	return d
}

// TestStreamSilenceTriggersFailover exercises the standby's failover
// detector: heartbeat-only stream progress (the applied sequence never
// moves) must keep holding off the -failover-after promotion, and true
// stream silence after the primary dies must trip it. Regression test
// for the detector reading the cumulative heartbeat counter as
// perpetual progress, which made auto-promotion permanently unreachable
// once any heartbeat had ever arrived.
func TestStreamSilenceTriggersFailover(t *testing.T) {
	fabric := interconnect.NewFabric(1024)
	primD := testDomain(t, fabric, 0)
	stbyD := testDomain(t, fabric, 1)

	// Primary side: just a replication feed on the reserved topic.
	regA := nameservice.NewTopicRegistry()
	dirA := topic.LocalDirectory{R: regA}
	pub, err := topic.NewPublisher(primD, dirA, topic.PublisherConfig{
		Topic: registrystore.ReplicationTopic, Class: registrystore.ReplicationClass,
		RefreshEvery: 1, Window: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := registrystore.NewFeed(pub, primD.MaxPayload())

	// Standby side: the stream apply loop plus the detector state.
	regB := nameservice.NewTopicRegistry()
	sub, err := topic.NewSubscriber(stbyD, dirA, registrystore.ReplicationTopic,
		registrystore.ReplicationClass, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	rn := &registryNode{
		opts:      registryOpts{FailoverAfter: 300 * time.Millisecond},
		apply:     registrystore.NewApply(sub, regB, nil),
		lastMoved: time.Now(),
	}

	// Heartbeat-only progress, spanning well past FailoverAfter in
	// total: each delivered heartbeat must refresh the silence clock.
	for i := 0; i < 6; i++ {
		feed.Heartbeat(1)
		if _, err := feed.Pump(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
		rn.apply.Drain()
		if rn.streamSilent() {
			t.Fatalf("heartbeat progress read as silence on tick %d", i)
		}
	}

	// The primary dies: no more heartbeats. Silence must be detected
	// once the timeout elapses — with the cumulative-counter bug this
	// loop never terminates.
	deadline := time.Now().Add(5 * time.Second)
	for !rn.streamSilent() {
		if time.Now().After(deadline) {
			t.Fatal("stream silence never detected after the primary stopped")
		}
		rn.apply.Drain()
		time.Sleep(50 * time.Millisecond)
	}
}
