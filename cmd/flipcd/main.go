// Command flipcd runs one FLIPC node over TCP — the ethernet-cluster
// development platform of the paper, as a standalone process. It hosts
// a domain, an echo service on a named receive endpoint, and prints the
// endpoint address for flipcping (the out-of-band address exchange
// FLIPC expects a name service to provide).
//
// The transport is resilient: peers listed in -peer are kept in a
// nameservice node registry that feeds the transport's redial
// machinery, so daemons may start in any order and links that fail are
// re-established automatically with exponential backoff. On shutdown
// (or SIGUSR1-less platforms, just shutdown) flipcd prints a per-peer
// health report with the loss counters.
//
// Usage (two terminals):
//
//	flipcd -node 0 -listen 127.0.0.1:7000 -peer 1=127.0.0.1:7001
//	flipcd -node 1 -listen 127.0.0.1:7001 -peer 0=127.0.0.1:7000
//
// then:
//
//	flipcping -node 2 -listen 127.0.0.1:7002 \
//	          -peer 0=127.0.0.1:7000 -target <addr printed by node 0>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flipc/internal/core"
	"flipc/internal/nameservice"
	"flipc/internal/nettrans"
	"flipc/internal/wire"
)

func main() {
	var (
		node    = flag.Int("node", 0, "this node's ID")
		listen  = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		peers   = flag.String("peer", "", "comma-separated peer list: id=host:port,...")
		msgSize = flag.Int("msgsize", 128, "fixed message size (>=64, multiple of 32)")
		depth   = flag.Int("depth", 16, "echo endpoint queue depth")
		backoff = flag.Duration("reconnect-backoff", 50*time.Millisecond, "initial redial backoff")
		maxBack = flag.Duration("reconnect-max", 5*time.Second, "redial backoff cap")
	)
	flag.Parse()

	registry, err := nameservice.ParsePeerList(*peers)
	if err != nil {
		fatal(err)
	}
	tr, err := nettrans.ListenConfig(nettrans.Config{
		Node:        wire.NodeID(*node),
		Addr:        *listen,
		MessageSize: *msgSize,
		Resolver:    registry.Resolve,
		Reconnect: nettrans.ReconnectConfig{
			InitialBackoff: *backoff,
			MaxBackoff:     *maxBack,
		},
	})
	if err != nil {
		fatal(err)
	}
	defer tr.Close()
	fmt.Printf("flipcd: node %d listening on %s (message size %d)\n", *node, tr.Addr(), *msgSize)

	// Background connects through the redial state machine: unreachable
	// peers keep being retried, so daemon start order is irrelevant.
	for _, id := range registry.Nodes() {
		addr, _ := registry.Resolve(id)
		tr.Register(id, addr)
		fmt.Printf("flipcd: peer node %d at %s (connecting in background)\n", id, addr)
	}

	d, err := core.NewDomain(core.Config{
		Node:        wire.NodeID(*node),
		MessageSize: *msgSize,
		NumBuffers:  64,
	}, tr)
	if err != nil {
		fatal(err)
	}
	defer d.Close()
	d.Start()

	// Echo service: reply to each message's embedded reply address.
	// FLIPC does not deliver sender identity, so pingers put their
	// reply address in the first four payload bytes.
	rep, err := d.NewRecvEndpoint(*depth)
	if err != nil {
		fatal(err)
	}
	sep, err := d.NewSendEndpoint(*depth)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *depth-1; i++ {
		m, err := d.AllocBuffer()
		if err != nil {
			fatal(err)
		}
		if err := rep.Post(m); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("flipcd: echo endpoint address %#x (%v)\n", uint32(rep.Addr()), rep.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	echoed := 0
	for {
		select {
		case <-stop:
			fmt.Printf("flipcd: %d messages echoed; drops=%d\n", echoed, rep.Drops())
			report(tr)
			return
		default:
		}
		m, ok := rep.Receive()
		if !ok {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if m.Len() >= 4 {
			replyTo := wire.Addr(uint32(m.Payload()[0])<<24 | uint32(m.Payload()[1])<<16 |
				uint32(m.Payload()[2])<<8 | uint32(m.Payload()[3]))
			if replyTo.Valid() {
				out, err := d.AllocBuffer()
				if err == nil {
					n := copy(out.Payload(), m.Payload()[:m.Len()])
					if sep.Send(out, replyTo, n) != nil {
						d.FreeBuffer(out)
					}
					// Reclaim completed sends opportunistically.
					for {
						done, ok := sep.Acquire()
						if !ok {
							break
						}
						d.FreeBuffer(done)
					}
				}
			}
		}
		echoed++
		if rep.Post(m) != nil {
			d.FreeBuffer(m)
		}
	}
}

// report prints the transport's loss accounting and per-peer health.
func report(tr *nettrans.Transport) {
	st := tr.Stats()
	fmt.Printf("flipcd: transport sent=%d delivered=%d peerDowns=%d rxDrops=%d reconnects=%d\n",
		st.Sent, st.Delivered, st.PeerDowns, st.RxDrops, st.Reconnects)
	for _, h := range tr.Health() {
		fmt.Printf("flipcd: peer %d %-12s sent=%d refused=%d reconnects=%d meanOutage=%.1fms\n",
			h.Node, h.State, h.Sent, h.SendFailures, h.Reconnects, h.MeanOutageMs)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flipcd: %v\n", err)
	os.Exit(1)
}
