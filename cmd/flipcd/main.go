// Command flipcd runs one FLIPC node over TCP — the ethernet-cluster
// development platform of the paper, as a standalone process. It hosts
// a domain, an echo service on a named receive endpoint, and prints the
// endpoint address for flipcping (the out-of-band address exchange
// FLIPC expects a name service to provide).
//
// The transport is resilient: peers listed in -peer are kept in a
// nameservice node registry that feeds the transport's redial
// machinery, so daemons may start in any order and links that fail are
// re-established automatically with exponential backoff.
//
// Observability: -http starts the obs surface (/metrics in Prometheus
// or JSON form, /healthz, /debug/trace) and turns on the wait-free
// instrument set — including send-timestamp stamping, so peers that
// also run with metrics report true one-way delivery latency.
// SIGQUIT prints the per-peer health report without terminating; the
// same report is printed on shutdown and on any fatal exit after the
// transport is up.
//
// Usage (two terminals):
//
//	flipcd -node 0 -listen 127.0.0.1:7000 -peer 1=127.0.0.1:7001
//	flipcd -node 1 -listen 127.0.0.1:7001 -peer 0=127.0.0.1:7000
//
// then:
//
//	flipcping -node 2 -listen 127.0.0.1:7002 \
//	          -peer 0=127.0.0.1:7000 -target <addr printed by node 0>
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flipc/internal/core"
	"flipc/internal/duralog"
	"flipc/internal/engine"
	"flipc/internal/metrics"
	"flipc/internal/nameservice"
	"flipc/internal/nettrans"
	"flipc/internal/obs"
	"flipc/internal/trace"
	"flipc/internal/wire"
)

func main() {
	var (
		node     = flag.Int("node", 0, "this node's ID")
		listen   = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		peers    = flag.String("peer", "", "comma-separated peer list: id=host:port,...")
		msgSize  = flag.Int("msgsize", 128, "fixed message size (>=64, multiple of 32)")
		depth    = flag.Int("depth", 16, "echo endpoint queue depth")
		backoff  = flag.Duration("reconnect-backoff", 50*time.Millisecond, "initial redial backoff")
		maxBack  = flag.Duration("reconnect-max", 5*time.Second, "redial backoff cap")
		httpAddr = flag.String("http", "", "observability HTTP listen address (/metrics, /healthz, /debug/trace); empty disables")
		duraDir  = flag.String("duradir", "", "durable topic log root: health-swept read-only onto /metrics and /healthz (depth, cursor lag, retention breaches)")
		traceBuf = flag.Int("tracebuf", 4096, "trace ring capacity when -http is set")
		checksum = flag.Bool("checksum", false, "CRC32C-checksum outgoing frames and verify flagged arrivals")
		checks   = flag.Bool("checks", true, "engine validity checks (quarantine on comm-buffer corruption)")

		// Aggregation: -batch corks per-peer writes into the pending
		// buffer; control-class frames always bypass the cork. The flush
		// deadline is fixed (-flush-deadline) or, with -flush-budget,
		// adapts to the observed one-way p99 (needs -http for the
		// latency histogram; the fixed deadline is the floor).
		batch       = flag.Bool("batch", false, "coalesce per-peer writes (pending-buffer aggregation)")
		batchFrames = flag.Int("batch-frames", 64, "with -batch: frames per peer before an inline flush")
		flushDl     = flag.Duration("flush-deadline", 0, "with -batch: max age of a corked frame (adaptive floor when -flush-budget is set)")
		flushBudget = flag.Float64("flush-budget", 0, "with -batch: adaptive flush deadline = observed one-way p99 x this (0 = fixed deadline)")
		maxFlushDl  = flag.Duration("max-flush-delay", time.Millisecond, "with -batch -flush-budget: adaptive deadline cap")

		// Registry role: -registry serves the topic registry in-band.
		// With -waldir the registry is durable (WAL + snapshots) and
		// generation-fenced across restarts; -standby follows a primary's
		// replication stream instead of promoting, and takes over on
		// SIGUSR1 or after -failover-after of stream silence.
		registryOn    = flag.Bool("registry", false, "serve the topic registry on this node")
		walDir        = flag.String("waldir", "", "registry WAL/snapshot directory; empty runs the registry volatile")
		standby       = flag.Bool("standby", false, "start the registry as a standby replica (requires -waldir and -registry-stream)")
		streamAddr    = flag.String("registry-stream", "", "primary registry server endpoint address (hex) for the standby's replication stream")
		leaseInt      = flag.Duration("lease-interval", 2*time.Second, "registry housekeeping cadence (lease sweeps, replication pump)")
		compactEvery  = flag.Int("compact-every", 1024, "compact the registry WAL once it holds this many records")
		failoverAfter = flag.Duration("failover-after", 0, "standby self-promotes after this much stream silence (0 = only on SIGUSR1)")

		// Sharded registry: -shardmap partitions the topic namespace
		// across N registry shards (consistent hash); this node serves
		// shard -shard, replicates over its own !registry/<shard>
		// stream, and redirects topic ops it does not own.
		shardID  = flag.Uint("shard", 0, "this registry node's shard id (with -shardmap)")
		shardMap = flag.String("shardmap", "", "shard map: inline spec id[@hexaddr][*weight],... or a journal file path; empty runs unsharded")
	)
	flag.Parse()

	// Observability is wired only when the HTTP surface is requested:
	// the registry makes the engine stamp outgoing frames and mirror
	// its stats each pass, which a bare daemon need not pay for.
	var (
		reg  *metrics.Registry
		ring *trace.Ring
	)
	if *httpAddr != "" {
		reg = metrics.NewRegistry()
		ring = trace.New(*traceBuf)
	}

	registry, err := nameservice.ParsePeerList(*peers)
	if err != nil {
		fatal(err)
	}
	tr, err := nettrans.ListenConfig(nettrans.Config{
		Node:        wire.NodeID(*node),
		Addr:        *listen,
		MessageSize: *msgSize,
		Resolver:    registry.Resolve,
		Reconnect: nettrans.ReconnectConfig{
			InitialBackoff: *backoff,
			MaxBackoff:     *maxBack,
		},
		BatchWrites:    *batch,
		MaxBatchFrames: *batchFrames,
		FlushDeadline:  *flushDl,
		FlushBudget:    *flushBudget,
		MaxFlushDelay:  *maxFlushDl,
		Trace:          ring,
		Metrics:        reg,
	})
	if err != nil {
		fatal(err)
	}
	defer tr.Close()
	reportOnFatal = tr // fatal exits from here on include the health report
	fmt.Printf("flipcd: node %d listening on %s (message size %d)\n", *node, tr.Addr(), *msgSize)
	if *batch {
		if *flushBudget > 0 {
			fmt.Printf("flipcd: aggregation on: %d frames/peer, adaptive deadline p99 x %.2f in [%v, %v]\n",
				*batchFrames, *flushBudget, *flushDl, *maxFlushDl)
		} else {
			fmt.Printf("flipcd: aggregation on: %d frames/peer, fixed deadline %v\n", *batchFrames, *flushDl)
		}
	}

	var srv *obs.Server
	if *httpAddr != "" {
		srv = &obs.Server{Registry: reg, Health: tr.Health, Trace: ring}
		if *duraDir != "" {
			// Read-only sweep per scrape: ScanDir never opens (so never
			// truncates) the logs, making it safe against live writers.
			root := *duraDir
			srv.DurableHealth = func() []duralog.TopicHealth {
				ths, _ := duralog.ScanDir(root)
				return ths
			}
		}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(fmt.Errorf("http listen %s: %w", *httpAddr, err))
		}
		go http.Serve(ln, srv.Handler())
		fmt.Printf("flipcd: metrics on http://%s/metrics (healthz, debug/trace)\n", ln.Addr())
	}

	// Background connects through the redial state machine: unreachable
	// peers keep being retried, so daemon start order is irrelevant.
	for _, id := range registry.Nodes() {
		addr, _ := registry.Resolve(id)
		tr.Register(id, addr)
		fmt.Printf("flipcd: peer node %d at %s (connecting in background)\n", id, addr)
	}

	// A registry node needs headroom beyond the echo service: server
	// window, replication feed or stream subscriber, resync client.
	numBuffers := 64
	if *registryOn {
		numBuffers = 512
	}
	d, err := core.NewDomain(core.Config{
		Node:        wire.NodeID(*node),
		MessageSize: *msgSize,
		NumBuffers:  numBuffers,
		Engine: engine.Config{
			Trace:          ring,
			Metrics:        reg,
			Checksum:       *checksum,
			ValidityChecks: *checks,
		},
	}, tr)
	if err != nil {
		fatal(err)
	}
	defer d.Close()
	reportEngine = d.Engine() // reports from here on include fault containment
	if srv != nil {
		srv.Quarantined = d.Engine().Quarantined
	}
	d.Start()

	// Registry role: an in-band nameservice server, durable when
	// -waldir is set, replicating to (or following) a peer when
	// configured. Housekeeping runs on its own goroutine; /healthz and
	// /metrics surface the role, generation, and store state.
	var rn *registryNode
	if *registryOn {
		rn, err = startRegistry(d, nameservice.New(), registryOpts{
			WALDir:        *walDir,
			Standby:       *standby,
			StreamAddr:    *streamAddr,
			LeaseInterval: *leaseInt,
			CompactEvery:  *compactEvery,
			FailoverAfter: *failoverAfter,
			Shard:         uint32(*shardID),
			ShardMap:      *shardMap,
		})
		if err != nil {
			fatal(err)
		}
		if srv != nil && rn.mgr != nil {
			srv.RegistryHealth = rn.mgr.Health
		}
		if srv != nil && rn.sharded() {
			srv.ShardHealth = rn.shardHealth
		}
		role := "primary"
		if rn.mgr != nil {
			role = rn.mgr.Role().String()
		}
		fmt.Printf("flipcd: registry server address %#x (%v), role %s\n",
			uint32(rn.srv.Addr()), rn.srv.Addr(), role)
		if rn.sharded() {
			m := rn.shardMap()
			fmt.Printf("flipcd: registry shard %d of %d (map epoch %d), stream %s\n",
				*shardID, m.Len(), m.Epoch(), rn.replicationTopic())
		}
		hkStop := make(chan struct{})
		defer close(hkStop)
		go rn.housekeeping(hkStop)
		// SIGUSR1 promotes a standby registry to primary (manual
		// failover); harmless on a node that is already primary.
		promote := make(chan os.Signal, 1)
		signal.Notify(promote, syscall.SIGUSR1)
		go func() {
			for range promote {
				rn.requestPromote()
			}
		}()
	}

	// Echo service: reply to each message's embedded reply address.
	// FLIPC does not deliver sender identity, so pingers put their
	// reply address in the first four payload bytes.
	rep, err := d.NewRecvEndpoint(*depth)
	if err != nil {
		fatal(err)
	}
	sep, err := d.NewSendEndpoint(*depth)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *depth-1; i++ {
		m, err := d.AllocBuffer()
		if err != nil {
			fatal(err)
		}
		if err := rep.Post(m); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("flipcd: echo endpoint address %#x (%v)\n", uint32(rep.Addr()), rep.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	// SIGQUIT prints the health report without terminating — the
	// operator's live look at a daemon with no -http surface.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	echoed := 0
	for {
		select {
		case <-stop:
			fmt.Printf("flipcd: %d messages echoed; drops=%d\n", echoed, rep.Drops())
			report(tr)
			return
		case <-quit:
			fmt.Printf("flipcd: %d messages echoed; drops=%d\n", echoed, rep.Drops())
			report(tr)
		default:
		}
		m, ok := rep.Receive()
		if !ok {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if m.Len() >= 4 {
			replyTo := wire.Addr(uint32(m.Payload()[0])<<24 | uint32(m.Payload()[1])<<16 |
				uint32(m.Payload()[2])<<8 | uint32(m.Payload()[3]))
			if replyTo.Valid() {
				out, err := d.AllocBuffer()
				if err == nil {
					n := copy(out.Payload(), m.Payload()[:m.Len()])
					if sep.Send(out, replyTo, n) != nil {
						d.FreeBuffer(out)
					}
					// Reclaim completed sends opportunistically.
					for {
						done, ok := sep.Acquire()
						if !ok {
							break
						}
						d.FreeBuffer(done)
					}
				}
			}
		}
		echoed++
		if rep.Post(m) != nil {
			d.FreeBuffer(m)
		}
	}
}

// report prints the transport's loss accounting, per-peer health, and
// — once the domain is up — the engine's fault containment state.
func report(tr *nettrans.Transport) {
	st := tr.Stats()
	fmt.Printf("flipcd: transport sent=%d delivered=%d peerDowns=%d rxDrops=%d reconnects=%d\n",
		st.Sent, st.Delivered, st.PeerDowns, st.RxDrops, st.Reconnects)
	for _, h := range tr.Health() {
		fmt.Printf("flipcd: peer %d %-12s sent=%d refused=%d reconnects=%d meanOutage=%.1fms\n",
			h.Node, h.State, h.Sent, h.SendFailures, h.Reconnects, h.MeanOutageMs)
	}
	if reportEngine == nil {
		return
	}
	es := reportEngine.Stats()
	fmt.Printf("flipcd: engine drops recv=%d addr=%d bad=%d checksum=%d quarantine=%d; quarantines=%d recoveries=%d\n",
		es.RecvDrops, es.AddrDrops, es.BadFrames, es.ChecksumDrops, es.QuarantineDrops,
		es.Quarantines, es.QuarantineRecoveries)
	for _, q := range reportEngine.Quarantined() {
		fmt.Printf("flipcd: QUARANTINED endpoint slot %d (%s, since pass %d) — free and re-allocate to recover\n",
			q.Slot, q.Kind, q.Pass)
	}
}

// reportOnFatal, once the transport is up, makes fatal exits emit the
// health report: a daemon dying mid-flight must not take its loss
// accounting with it.
var reportOnFatal *nettrans.Transport

// reportEngine, once the domain is up, adds the engine's fault
// containment state (loss categories, quarantined endpoints) to every
// report. Reads are safe: Quarantined is a published snapshot, and the
// stats race in a crashing daemon is an accepted tradeoff for having
// the numbers at all.
var reportEngine *engine.Engine

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flipcd: %v\n", err)
	if reportOnFatal != nil {
		report(reportOnFatal)
	}
	os.Exit(1)
}
