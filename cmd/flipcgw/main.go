// Command flipcgw runs the FLIPC client edge plane: a gateway daemon
// that terminates TCP client connections and multiplexes them onto the
// fabric through one commbuf endpoint per priority class — fabric
// resources scale with gateways, never with the client population.
//
// The gateway joins the cluster like any node (nettrans, -peer list),
// bootstraps its directory from a registry server (-registry, the
// server endpoint address flipcd prints), and — when that registry is
// sharded — fetches the shard map in-band and opens one registry
// client per shard, so topic routing, presence spreading, and NotOwner
// redirects all work against the sharded registry. Client
// subscriptions ride the registry's wildcard pattern plane; every
// client is recorded as a leased presence entry, so a gateway that
// dies cold has its whole client population swept by lease expiry
// within one TTL — no distributed cleanup protocol.
//
// Usage (alongside a flipcd -registry node):
//
//	flipcd -node 0 -listen 127.0.0.1:7000 -registry -http 127.0.0.1:8080
//	flipcgw -node 1 -listen 127.0.0.1:7001 -peer 0=127.0.0.1:7000 \
//	        -registry <addr printed by flipcd> -clients 127.0.0.1:7400
//
// then clients connect to 127.0.0.1:7400 speaking the gateway framing
// protocol (see internal/gateway and examples/gateway).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"flipc/internal/core"
	"flipc/internal/engine"
	"flipc/internal/gateway"
	"flipc/internal/metrics"
	"flipc/internal/nameservice"
	"flipc/internal/nettrans"
	"flipc/internal/obs"
	"flipc/internal/topic"
	"flipc/internal/trace"
	"flipc/internal/wire"
)

func main() {
	var (
		node     = flag.Int("node", 1, "this node's ID")
		name     = flag.String("name", "", "gateway name (presence key prefix; default gw-<node>)")
		listen   = flag.String("listen", "127.0.0.1:0", "fabric TCP listen address")
		peers    = flag.String("peer", "", "comma-separated peer list: id=host:port,...")
		msgSize  = flag.Int("msgsize", 128, "fixed message size (>=64, multiple of 32; must match the cluster's)")
		regAddr  = flag.String("registry", "", "registry server endpoint address (hex, as printed by flipcd) — required")
		clients  = flag.String("clients", "127.0.0.1:7400", "client-facing TCP listen address")
		queue    = flag.Int("queue", 64, "per-client per-class outbound queue bound")
		inboxBuf = flag.Int("inboxbufs", 128, "posted buffers per class inbox")
		throttle = flag.Int("throttle-at", 16, "consecutive overflow drops before a client is marked throttled")
		maxPubs  = flag.Int("max-publishers", 64, "cached per-topic publisher bound")
		lease    = flag.Duration("lease-interval", 2*time.Second, "housekeeping cadence (presence renewal, pattern renewal, saturation probe)")
		rpcTime  = flag.Duration("rpc-timeout", 2*time.Second, "registry round-trip timeout")
		maxRedir = flag.Int("max-redirects", 0, "NotOwner redirect bound per registry op (0 = default)")
		httpAddr = flag.String("http", "", "observability HTTP listen address (/metrics, /healthz); empty disables")
		traceBuf = flag.Int("tracebuf", 4096, "trace ring capacity when -http is set")
	)
	flag.Parse()
	if *regAddr == "" {
		fatal(fmt.Errorf("-registry is required (the registry server endpoint address flipcd prints)"))
	}
	gwName := *name
	if gwName == "" {
		gwName = "gw-" + strconv.Itoa(*node)
	}

	var (
		mreg *metrics.Registry
		ring *trace.Ring
	)
	if *httpAddr != "" {
		mreg = metrics.NewRegistry()
		ring = trace.New(*traceBuf)
	}

	peerReg, err := nameservice.ParsePeerList(*peers)
	if err != nil {
		fatal(err)
	}
	tr, err := nettrans.ListenConfig(nettrans.Config{
		Node:        wire.NodeID(*node),
		Addr:        *listen,
		MessageSize: *msgSize,
		Resolver:    peerReg.Resolve,
		Trace:       ring,
		Metrics:     mreg,
	})
	if err != nil {
		fatal(err)
	}
	defer tr.Close()
	fmt.Printf("flipcgw: node %d (%s) on fabric %s\n", *node, gwName, tr.Addr())
	for _, id := range peerReg.Nodes() {
		addr, _ := peerReg.Resolve(id)
		tr.Register(id, addr)
	}

	// Buffer budget: 3 class inboxes plus the publisher cache's
	// outboxes plus registry clients.
	d, err := core.NewDomain(core.Config{
		Node:        wire.NodeID(*node),
		MessageSize: *msgSize,
		NumBuffers:  3**inboxBuf + 512,
		Engine: engine.Config{
			Trace:   ring,
			Metrics: mreg,
		},
	}, tr)
	if err != nil {
		fatal(err)
	}
	defer d.Close()
	d.Start()

	server, err := parseEndpointAddr(*regAddr)
	if err != nil {
		fatal(err)
	}
	dir, err := buildDirectory(d, server, *rpcTime, *maxRedir)
	if err != nil {
		fatal(err)
	}

	mux, err := gateway.NewMux(d, gateway.Config{
		Name:          gwName,
		Dir:           dir,
		InboxBuffers:  *inboxBuf,
		ClientQueue:   *queue,
		ThrottleAt:    *throttle,
		MaxPublishers: *maxPubs,
		Registry:      mreg,
	})
	if err != nil {
		fatal(err)
	}

	if *httpAddr != "" {
		srv := &obs.Server{Registry: mreg, Health: tr.Health, Trace: ring,
			Quarantined: d.Engine().Quarantined, GatewayHealth: gatewayJSON(mux)}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(fmt.Errorf("http listen %s: %w", *httpAddr, err))
		}
		go http.Serve(ln, srv.Handler())
		fmt.Printf("flipcgw: metrics on http://%s/metrics (healthz)\n", ln.Addr())
	}

	// Housekeeping: presence/pattern lease renewal and the saturation
	// probe, on the registry's lease cadence.
	hkStop := make(chan struct{})
	defer close(hkStop)
	go func() {
		tick := time.NewTicker(*lease)
		defer tick.Stop()
		for {
			select {
			case <-hkStop:
				return
			case <-tick.C:
				mux.Housekeeping()
			}
		}
	}()

	cln, err := net.Listen("tcp", *clients)
	if err != nil {
		fatal(fmt.Errorf("client listen %s: %w", *clients, err))
	}
	gs := gateway.NewServer(mux)
	fmt.Printf("flipcgw: serving clients on %s\n", cln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		_ = gs.Close()
	}()
	if err := gs.Serve(cln); err != nil {
		fatal(err)
	}
	h := mux.Health()
	st := mux.Stats()
	fmt.Printf("flipcgw: shutdown: conns=%d received=%d matched=%d unmatched=%d pub=%d puberr=%d renewErrs=%d\n",
		h.Conns, st.Received, st.Matched, st.Unmatched, st.PubOK, st.PubErrs, h.RenewErrs)
}

// buildDirectory bootstraps the gateway's EdgeDirectory from one
// registry server: fetch the shard map in-band; when the registry is
// sharded, open one client per shard (at each shard's address hint)
// behind a ShardedDirectory so topic routing, pattern broadcast, and
// presence spreading work shard-aware; otherwise a single
// RemoteDirectory against the bootstrap server.
func buildDirectory(d *core.Domain, server wire.Addr, timeout time.Duration, maxRedirects int) (topic.EdgeDirectory, error) {
	boot, err := nameservice.NewClient(d, server)
	if err != nil {
		return nil, fmt.Errorf("registry client: %w", err)
	}
	m, self, err := boot.ShardMap(timeout)
	if err != nil {
		// No shard map: the registry runs unsharded.
		fmt.Printf("flipcgw: unsharded registry at %v (%v)\n", server, err)
		return topic.RemoteDirectory{C: boot, Timeout: timeout}, nil
	}
	sdir := topic.NewShardedDirectory(m)
	sdir.MaxRedirects = maxRedirects
	installed := 0
	for _, e := range m.Entries() {
		var dir topic.Directory
		switch {
		case e.ID == self:
			dir = topic.RemoteDirectory{C: boot, Timeout: timeout}
		case e.Addr != 0:
			cl, err := nameservice.NewClient(d, wire.Addr(e.Addr))
			if err != nil {
				return nil, fmt.Errorf("registry client for shard %d: %w", e.ID, err)
			}
			dir = topic.RemoteDirectory{C: cl, Timeout: timeout}
		default:
			fmt.Printf("flipcgw: shard %d has no address hint; ops routed to it will fail until the map carries one\n", e.ID)
			continue
		}
		sdir.SetShard(e.ID, dir)
		installed++
	}
	if installed == 0 {
		return nil, fmt.Errorf("shard map (epoch %d) carries no reachable shard", m.Epoch())
	}
	fmt.Printf("flipcgw: sharded registry: %d/%d shards installed (map epoch %d)\n",
		installed, m.Len(), m.Epoch())
	return sdir, nil
}

// gatewayJSON adapts Mux.Health to the obs exposition.
func gatewayJSON(m *gateway.Mux) func() *obs.GatewayJSON {
	return func() *obs.GatewayJSON {
		h := m.Health()
		j := &obs.GatewayJSON{
			Name:      h.Name,
			Conns:     h.Conns,
			Presence:  h.Presence,
			Patterns:  h.Patterns,
			Throttled: h.Throttled,
			RenewErrs: h.RenewErrs,
		}
		for _, ch := range h.PerClass {
			j.PerClass = append(j.PerClass, obs.GatewayClassJSON{
				Class:      ch.Class,
				QueueDepth: ch.QueueDepth,
				InboxDrops: ch.InboxDrops,
				Saturated:  ch.Saturated,
			})
		}
		return j
	}
}

// parseEndpointAddr parses a hex endpoint address as flipcd prints
// them (with or without the 0x prefix).
func parseEndpointAddr(s string) (wire.Addr, error) {
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	v, err := strconv.ParseUint(s, 16, 32)
	if err != nil {
		return wire.NilAddr, fmt.Errorf("bad endpoint address %q: %w", s, err)
	}
	a := wire.Addr(v)
	if !a.Valid() {
		return wire.NilAddr, fmt.Errorf("invalid endpoint address %q", s)
	}
	return a, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flipcgw: %v\n", err)
	os.Exit(1)
}
