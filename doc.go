// Package flipc is a reproduction of "FLIPC: A Low Latency Messaging
// System for Distributed Real Time Environments" (Black, Smith, Sears,
// Dean — OSF Research Institute; USENIX Annual Technical Conference,
// January 1996).
//
// The application-facing library lives in internal/core; the messaging
// engine in internal/engine; the communication buffer and its wait-free
// structures in internal/commbuf and internal/waitfree. See README.md
// for a tour, DESIGN.md for the system inventory and substitutions, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks
// in bench_test.go regenerate every evaluation artifact (run
// cmd/flipcbench for the printed tables).
package flipc
