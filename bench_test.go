// Benchmarks regenerating the paper's evaluation artifacts (one bench
// per experiment E1–E10; the reported custom metrics carry the paper
// comparison, while ns/op measures this Go implementation's wall-clock
// cost of running the experiment), plus wall-clock micro-benchmarks of
// the wait-free data structures and the real message path.
package flipc_test

import (
	"fmt"
	"runtime"
	"testing"

	"flipc/internal/baseline/nx"
	"flipc/internal/baseline/pam"
	"flipc/internal/baseline/sunmos"
	"flipc/internal/commbuf"
	"flipc/internal/core"
	"flipc/internal/experiments"
	"flipc/internal/interconnect"
	"flipc/internal/mem"
	"flipc/internal/stats"
	"flipc/internal/waitfree"
	"flipc/internal/wire"
)

// --- Paper artifact benches -------------------------------------------

// BenchmarkE1Figure4Latency regenerates Figure 4 and reports the fit.
func BenchmarkE1Figure4Latency(b *testing.B) {
	var r *experiments.E1Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E1Figure4(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Fit.Intercept, "intercept-µs")
	b.ReportMetric(r.Fit.Slope*1000, "slope-ns/B")
}

// BenchmarkE2ComparisonTable regenerates the 120-byte comparison.
func BenchmarkE2ComparisonTable(b *testing.B) {
	var r *experiments.E2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E2Comparison(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FLIPCMicros, "flipc-µs")
	b.ReportMetric(r.NXMicros, "nx-µs")
	b.ReportMetric(r.PAMMicros, "pam-µs")
	b.ReportMetric(r.SUNMOSMicros, "sunmos-µs")
}

// BenchmarkE3ValidityChecks regenerates the +2 µs check overhead.
func BenchmarkE3ValidityChecks(b *testing.B) {
	var r *experiments.E3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E3ValidityChecks(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DeltaMicros, "checks-delta-µs")
}

// BenchmarkE4CacheAblation regenerates the locks+false-sharing ablation.
func BenchmarkE4CacheAblation(b *testing.B) {
	var r *experiments.E4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E4CacheAblation(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TunedMicros, "tuned-µs")
	b.ReportMetric(r.UntunedMicros, "untuned-µs")
	b.ReportMetric(r.Factor, "factor")
}

// BenchmarkE5ColdStart regenerates the start-up transient.
func BenchmarkE5ColdStart(b *testing.B) {
	var r *experiments.E5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E5ColdStart(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DeltaMicros, "cold-delta-µs")
}

// BenchmarkE6BandwidthSlope regenerates the slope→bandwidth claim.
func BenchmarkE6BandwidthSlope(b *testing.B) {
	var r *experiments.E6Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E6BandwidthSlope(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ImpliedMBs, "MB/s")
}

// BenchmarkE7SmallMessageCrossover regenerates the PAM comparison.
func BenchmarkE7SmallMessageCrossover(b *testing.B) {
	var r *experiments.E7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E7SmallMessageCrossover(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.CrossoverBytes), "crossover-B")
}

// BenchmarkE8LargeMessageThroughput regenerates the bulk positioning.
func BenchmarkE8LargeMessageThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8LargeMessageThroughput(1996); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9DropsAndFlowControl regenerates the drop-semantics study.
func BenchmarkE9DropsAndFlowControl(b *testing.B) {
	var r *experiments.E9Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E9DropsAndFlowControl(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.DroppedRaw), "raw-drops")
	b.ReportMetric(float64(r.DroppedWindowed), "windowed-drops")
}

// BenchmarkE10KKTVsNative regenerates the engine-binding comparison.
func BenchmarkE10KKTVsNative(b *testing.B) {
	var r *experiments.E10Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E10KKTVsNative(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.NativeMicros, "native-µs")
	b.ReportMetric(r.KKTMicros, "kkt-µs")
}

// --- Baseline model benches -------------------------------------------

func BenchmarkBaselineModels(b *testing.B) {
	nxs, pams, suns := nx.New(), pam.New(), sunmos.New()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += int64(nxs.OneWayLatency(120))
		sink += int64(pams.OneWayLatency(120))
		sink += int64(suns.OneWayLatency(120))
	}
	_ = sink
}

// --- Wall-clock micro-benchmarks of the real implementation ------------

// BenchmarkQueueReleaseProcessAcquire measures one full buffer cycle
// through the three-pointer wait-free queue (this Go implementation's
// cost, not the Paragon's).
func BenchmarkQueueReleaseProcessAcquire(b *testing.B) {
	a, err := mem.New(mem.Config{ControlWords: 4096, LineWords: 4})
	if err != nil {
		b.Fatal(err)
	}
	base, _ := a.AllocLines(waitfree.QueueWords(8, 4, true) / 4)
	q, err := waitfree.NewQueue(a, base, 8, 4, true)
	if err != nil {
		b.Fatal(err)
	}
	app := mem.NewView(a, mem.ActorApp)
	eng := mem.NewView(a, mem.ActorEngine)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.Release(app, uint64(i)) {
			b.Fatal("release failed")
		}
		if _, ok := q.ProcessPeek(eng); !ok {
			b.Fatal("peek failed")
		}
		q.AdvanceProcess(eng)
		if _, ok := q.Acquire(app); !ok {
			b.Fatal("acquire failed")
		}
	}
}

// BenchmarkQueuePaddedVsUnpadded compares layouts under real Go
// hardware (the modern echo of the paper's false-sharing finding).
func BenchmarkQueuePaddedVsUnpadded(b *testing.B) {
	for _, padded := range []bool{true, false} {
		name := "unpadded"
		if padded {
			name = "padded"
		}
		b.Run(name, func(b *testing.B) {
			a, err := mem.New(mem.Config{ControlWords: 4096, LineWords: 8})
			if err != nil {
				b.Fatal(err)
			}
			var base int
			if padded {
				base, _ = a.AllocLines(waitfree.QueueWords(8, 8, true) / 8)
			} else {
				base, _ = a.AllocWords(waitfree.QueueWords(8, 8, false))
			}
			q, err := waitfree.NewQueue(a, base, 8, 8, padded)
			if err != nil {
				b.Fatal(err)
			}
			app := mem.NewView(a, mem.ActorApp)
			eng := mem.NewView(a, mem.ActorEngine)
			stop := make(chan struct{})
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, ok := q.ProcessPeek(eng); ok {
						q.AdvanceProcess(eng)
					} else {
						runtime.Gosched() // keep single-CPU hosts live
					}
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !q.Release(app, uint64(i)) {
					q.Acquire(app)
				}
				q.Acquire(app)
			}
			b.StopTimer()
			close(stop)
		})
	}
}

// BenchmarkCounterIncr measures the two-location counter's increment.
func BenchmarkCounterIncr(b *testing.B) {
	a, _ := mem.New(mem.Config{ControlWords: 64, LineWords: 4})
	base, _ := a.AllocLines(waitfree.CounterWords(4, true) / 4)
	c, err := waitfree.NewCounter(a, base, 4, true)
	if err != nil {
		b.Fatal(err)
	}
	eng := mem.NewView(a, mem.ActorEngine)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Incr(eng)
	}
}

// BenchmarkEndToEndMessage measures a full five-step message transfer
// between two in-process nodes, manual pumping (single-threaded cost of
// the whole path in this implementation).
func BenchmarkEndToEndMessage(b *testing.B) {
	for _, size := range []int{64, 128, 512} {
		b.Run(fmt.Sprintf("msg%d", size), func(b *testing.B) {
			fabric := interconnect.NewFabric(64)
			mk := func(node wire.NodeID) *core.Domain {
				tr, err := fabric.Attach(node)
				if err != nil {
					b.Fatal(err)
				}
				d, err := core.NewDomain(core.Config{Node: node, MessageSize: size, NumBuffers: 8}, tr)
				if err != nil {
					b.Fatal(err)
				}
				return d
			}
			src := mk(0)
			defer src.Close()
			dst := mk(1)
			defer dst.Close()
			sep, _ := src.NewSendEndpoint(4)
			rep, _ := dst.NewRecvEndpoint(4)
			sm, _ := src.AllocBuffer()
			rm, _ := dst.AllocBuffer()
			payload := src.MaxPayload()
			b.SetBytes(int64(payload))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rep.Post(rm); err != nil {
					b.Fatal(err)
				}
				if err := sep.Send(sm, rep.Addr(), payload); err != nil {
					b.Fatal(err)
				}
				for {
					src.Poll()
					dst.Poll()
					if m, ok := rep.Receive(); ok {
						rm = m
						break
					}
				}
				if m, ok := sep.Acquire(); !ok {
					b.Fatal("reclaim failed")
				} else {
					sm = m
				}
			}
		})
	}
}

// BenchmarkLockedVsLockFree measures the application-side interface
// variants on real hardware.
func BenchmarkLockedVsLockFree(b *testing.B) {
	run := func(b *testing.B, locked bool) {
		fabric := interconnect.NewFabric(64)
		tr, _ := fabric.Attach(0)
		sink, _ := fabric.Attach(1) // drained each iteration so the port never fills
		d, err := core.NewDomain(core.Config{Node: 0, MessageSize: 64, NumBuffers: 8}, tr)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		sep, _ := d.NewSendEndpoint(4)
		m, _ := d.AllocBuffer()
		dstAddr, _ := wire.MakeAddr(1, 0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if locked {
				err = sep.SendLocked(m, dstAddr, 8)
			} else {
				err = sep.Send(m, dstAddr, 8)
			}
			if err != nil {
				b.Fatal(err)
			}
			d.Poll()
			sink.Poll()
			var ok bool
			if locked {
				m, ok = sep.AcquireLocked()
			} else {
				m, ok = sep.Acquire()
			}
			if !ok {
				b.Fatal("acquire failed")
			}
		}
	}
	b.Run("lockfree", func(b *testing.B) { run(b, false) })
	b.Run("locked", func(b *testing.B) { run(b, true) })
}

// BenchmarkBufferAllocFree measures the application buffer pool.
func BenchmarkBufferAllocFree(b *testing.B) {
	buf, err := commbuf.New(commbuf.Config{Node: 0, MessageSize: 64, NumBuffers: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := buf.AllocMsg()
		if err != nil {
			b.Fatal(err)
		}
		if err := buf.FreeMsg(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeDecode measures frame marshaling.
func BenchmarkWireEncodeDecode(b *testing.B) {
	dst, _ := wire.MakeAddr(1, 2, 3)
	payload := make([]byte, 56)
	p := &wire.Packet{Dst: dst, Size: 56, Payload: payload}
	frame := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.Encode(p, frame); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatsFit measures the analysis path used by E1/E6.
func BenchmarkStatsFit(b *testing.B) {
	xs := make([]float64, 64)
	ys := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 15.45 + 0.00625*float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.LinearFit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (A-series; see DESIGN.md §4) ----------------------

// BenchmarkA1PollInterval regenerates the engine-cadence ablation.
func BenchmarkA1PollInterval(b *testing.B) {
	var r *experiments.A1Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.A1PollInterval(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeanMicros[0], "fastest-poll-µs")
	b.ReportMetric(r.MeanMicros[len(r.MeanMicros)-1], "slowest-poll-µs")
}

// BenchmarkA2PriorityTransport regenerates the prioritized-transport
// ablation.
func BenchmarkA2PriorityTransport(b *testing.B) {
	var r *experiments.A2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.A2PriorityTransport(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RoundRobinUrgentMicros, "rr-urgent-µs")
	b.ReportMetric(r.PriorityUrgentMicros, "prio-urgent-µs")
}

// BenchmarkA3ReceiveWindow regenerates the window-vs-loss ablation.
func BenchmarkA3ReceiveWindow(b *testing.B) {
	var r *experiments.A3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.A3ReceiveWindow(1996)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DropRates[0]*100, "window1-loss-%")
}
